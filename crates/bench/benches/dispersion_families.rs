//! Criterion timings of one dispersion-process realization per Table 1
//! family — the cost of regenerating each table row scales linearly in
//! these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use dispersion_core::process::continuous::run_ctu;
use dispersion_core::process::parallel::run_parallel;
use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::uniform::run_uniform;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::families::Family;
use dispersion_sim::rng::Xoshiro256pp;
use std::hint::black_box;

fn bench_processes(c: &mut Criterion) {
    let cfg = ProcessConfig::simple();
    let mut grng = Xoshiro256pp::new(1);

    let mut group = c.benchmark_group("dispersion");
    for family in [
        Family::Complete,
        Family::Hypercube,
        Family::Cycle,
        Family::BinaryTree,
        Family::Torus3d,
        Family::RandomRegular(5),
    ] {
        let size = if matches!(family, Family::Cycle) {
            64
        } else {
            256
        };
        let inst = family.instance(size, &mut grng);
        let g = inst.graph.clone();
        let origin = inst.origin;

        group.bench_function(format!("seq/{}", inst.label), |b| {
            let mut rng = Xoshiro256pp::new(7);
            b.iter(|| {
                black_box(
                    run_sequential(&g, origin, &cfg, &mut rng)
                        .unwrap()
                        .dispersion_time,
                )
            });
        });
        group.bench_function(format!("par/{}", inst.label), |b| {
            let mut rng = Xoshiro256pp::new(8);
            b.iter(|| {
                black_box(
                    run_parallel(&g, origin, &cfg, &mut rng)
                        .unwrap()
                        .dispersion_time,
                )
            });
        });
    }
    group.finish();

    // uniform & CTU on the clique only (tick overhead dominates elsewhere)
    let clique = Family::Complete.instance(256, &mut grng);
    c.bench_function("unif/clique", |b| {
        let mut rng = Xoshiro256pp::new(9);
        b.iter(|| {
            black_box(
                run_uniform(&clique.graph, clique.origin, &cfg, &mut rng)
                    .unwrap()
                    .settle_tick,
            )
        });
    });
    c.bench_function("ctu/clique", |b| {
        let mut rng = Xoshiro256pp::new(10);
        b.iter(|| {
            black_box(
                run_ctu(&clique.graph, clique.origin, &cfg, &mut rng)
                    .unwrap()
                    .settle_time,
            )
        });
    });
}

fn bench_recording_overhead(c: &mut Criterion) {
    // ablation: trajectory recording cost (needed only for Cut & Paste work)
    let mut grng = Xoshiro256pp::new(2);
    let inst = Family::Complete.instance(256, &mut grng);
    let plain = ProcessConfig::simple();
    let rec = ProcessConfig::simple().recording();
    c.bench_function("seq/clique/plain", |b| {
        let mut rng = Xoshiro256pp::new(11);
        b.iter(|| {
            black_box(
                run_sequential(&inst.graph, inst.origin, &plain, &mut rng)
                    .unwrap()
                    .total_steps,
            )
        });
    });
    c.bench_function("seq/clique/recorded", |b| {
        let mut rng = Xoshiro256pp::new(11);
        b.iter(|| {
            black_box(
                run_sequential(&inst.graph, inst.origin, &rec, &mut rng)
                    .unwrap()
                    .total_steps,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_processes, bench_recording_overhead
}
criterion_main!(benches);
