//! Ablation (DESIGN.md §5): Xoshiro256++ against `StdRng` (ChaCha12) on the
//! simulators' hot loop — one random neighbour choice per walk step.

use criterion::{criterion_group, criterion_main, Criterion};
use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::generators::complete;
use dispersion_graphs::walk::{step, WalkKind};
use dispersion_sim::rng::Xoshiro256pp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_raw_steps(c: &mut Criterion) {
    let g = complete(1024);
    c.bench_function("steps-1e4/xoshiro", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| {
            let mut v = 0;
            for _ in 0..10_000 {
                v = step(&g, WalkKind::Simple, v, &mut rng);
            }
            black_box(v)
        });
    });
    c.bench_function("steps-1e4/stdrng", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut v = 0;
            for _ in 0..10_000 {
                v = step(&g, WalkKind::Simple, v, &mut rng);
            }
            black_box(v)
        });
    });
}

fn bench_full_process(c: &mut Criterion) {
    let g = complete(256);
    let cfg = ProcessConfig::simple();
    c.bench_function("seq-clique256/xoshiro", |b| {
        let mut rng = Xoshiro256pp::new(2);
        b.iter(|| {
            black_box(
                run_sequential(&g, 0, &cfg, &mut rng)
                    .unwrap()
                    .dispersion_time,
            )
        });
    });
    c.bench_function("seq-clique256/stdrng", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            black_box(
                run_sequential(&g, 0, &cfg, &mut rng)
                    .unwrap()
                    .dispersion_time,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_raw_steps, bench_full_process
}
criterion_main!(benches);
