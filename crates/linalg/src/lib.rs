//! # dispersion-linalg
//!
//! Minimal dense linear algebra for the dispersion-time reproduction:
//!
//! * [`Matrix`] — row-major dense `f64` matrix,
//! * [`lu`] — LU factorisation with partial pivoting (solve / inverse /
//!   determinant), used for exact expected hitting times,
//! * [`eigen`] — cyclic Jacobi and power iteration for symmetric matrices,
//!   used for spectral gaps `1 − λ₂`,
//! * [`vector`] — dot/norm/TV-distance helpers.
//!
//! Everything is written for the small dense systems arising from graphs
//! with `n ≲ 4000` vertices; no BLAS and no unsafe code.
//!
//! ```
//! use dispersion_linalg::{lu, Matrix};
//! let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
//! let x = lu::solve(&a, &[2.0, 8.0]).unwrap();
//! assert_eq!(x, vec![1.0, 2.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod vector;

pub use eigen::{jacobi_eigen, power_iteration, second_eigenvalue, SymmetricEigen};
pub use lu::{inverse, solve, Lu, Singular};
pub use matrix::Matrix;
