//! Small dense-vector helpers shared by the numeric code.

/// Dot product.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `L1` norm.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute entry.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Normalises `a` to sum 1 (probability vector). No-op on the zero vector.
pub fn normalise_l1(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s != 0.0 {
        for v in a {
            *v /= s;
        }
    }
}

/// Total-variation distance between two probability vectors:
/// `½ Σ |p_i - q_i|`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn axpy_works() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalise_to_distribution() {
        let mut p = [2.0, 2.0, 4.0];
        normalise_l1(&mut p);
        assert_eq!(p, [0.25, 0.25, 0.5]);
        let mut z = [0.0, 0.0];
        normalise_l1(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn tv_distance() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(total_variation(&p, &q), 1.0);
        assert_eq!(total_variation(&p, &p), 0.0);
        let r = [0.5, 0.5];
        assert_eq!(total_variation(&p, &r), 0.5);
    }
}
