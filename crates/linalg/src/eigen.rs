//! Symmetric eigensolvers: cyclic Jacobi (full spectrum) and power iteration
//! (dominant eigenpair).
//!
//! The random-walk transition matrix `P = D⁻¹A` of a connected graph is
//! similar to the symmetric matrix `N = D^{-1/2} A D^{-1/2}`; its spectrum
//! gives the spectral gap `1 - λ₂` and the relaxation time used throughout
//! Section 3 and Appendix C of the paper.

use crate::matrix::Matrix;

/// Full eigendecomposition of a symmetric matrix.
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// `vectors.row(k)` is the eigenvector for `values[k]` (unit norm).
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigenvalue iteration for symmetric matrices.
///
/// Runs sweeps of Givens rotations until the off-diagonal Frobenius mass
/// drops below `tol`, or 100 sweeps. Accuracy is ~1e-12 for the sizes used
/// here (`n ≲ 2000`, though `O(n³)` per sweep makes ≳500 slow in debug
/// builds).
///
/// # Panics
///
/// Panics if `a` is not symmetric to `1e-9`.
pub fn jacobi_eigen(a: &Matrix, tol: f64) -> SymmetricEigen {
    assert!(
        a.is_symmetric(1e-9),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s.sqrt()
    };

    for _sweep in 0..100 {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation to rows/cols p,q of m
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // accumulate eigenvectors (rows of v are eigvecs of aᵀ ... we
                // rotate rows so that v.row(k) tracks the k-th eigenvector)
                for k in 0..n {
                    let vpk = v[(p, k)];
                    let vqk = v[(q, k)];
                    v[(p, k)] = c * vpk - s * vqk;
                    v[(q, k)] = s * vpk + c * vqk;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |k, j| v[(order[k], j)]);
    SymmetricEigen { values, vectors }
}

/// Dominant eigenpair of a symmetric matrix by power iteration with
/// deflation hooks: returns `(eigenvalue, eigenvector)`.
///
/// `orthogonal_to` lets the caller deflate already-found eigenvectors to
/// reach subdominant pairs. The start vector is deterministic.
pub fn power_iteration(
    a: &Matrix,
    orthogonal_to: &[Vec<f64>],
    iters: usize,
    tol: f64,
) -> (f64, Vec<f64>) {
    let n = a.rows();
    // deterministic, non-degenerate start vector
    let mut x: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 * 0.7368062997).sin())
        .collect();
    orthogonalise(&mut x, orthogonal_to);
    normalise(&mut x);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut y = a.matvec(&x);
        orthogonalise(&mut y, orthogonal_to);
        let ny = norm(&y);
        if ny == 0.0 {
            return (0.0, x);
        }
        for v in &mut y {
            *v /= ny;
        }
        let new_lambda = dot(&y, &a.matvec(&y));
        let delta = (new_lambda - lambda).abs();
        x = y;
        lambda = new_lambda;
        if delta < tol {
            break;
        }
    }
    (lambda, x)
}

/// The second-largest eigenvalue (by absolute value deflation of the first).
///
/// For a symmetric matrix whose dominant eigenpair is known analytically
/// (e.g. the walk matrix with eigenvector `∝ sqrt(deg)`), prefer passing that
/// vector via `power_iteration` directly.
pub fn second_eigenvalue(a: &Matrix, iters: usize, tol: f64) -> f64 {
    let (_, v1) = power_iteration(a, &[], iters, tol);
    let (l2, _) = power_iteration(a, &[v1], iters, tol);
    l2
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalise(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for v in a {
            *v /= n;
        }
    }
}

fn orthogonalise(x: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let proj = dot(x, b) / dot(b, b).max(1e-300);
        for (xi, bi) in x.iter_mut().zip(b) {
            *xi -= proj * bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag2() -> Matrix {
        Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]])
    }

    #[test]
    fn jacobi_2x2_known() {
        let e = jacobi_eigen(&diag2(), 1e-14);
        assert!((e.values[0] - 4.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_definition() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let e = jacobi_eigen(&a, 1e-14);
        for k in 0..3 {
            let v = e.vectors.row(k).to_vec();
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!(
                    (av[i] - e.values[k] * v[i]).abs() < 1e-9,
                    "eigenpair {k} violated"
                );
            }
        }
    }

    #[test]
    fn jacobi_path_laplacian_spectrum() {
        // Laplacian of P3: eigenvalues 0, 1, 3
        let a = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let e = jacobi_eigen(&a, 1e-14);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(e.values[2].abs() < 1e-10);
    }

    #[test]
    fn power_iteration_dominant() {
        let (l, v) = power_iteration(&diag2(), &[], 500, 1e-14);
        assert!((l - 4.0).abs() < 1e-8);
        // eigenvector ∝ (1,1)
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-6);
    }

    #[test]
    fn second_eigenvalue_via_deflation() {
        let l2 = second_eigenvalue(&diag2(), 500, 1e-14);
        assert!((l2 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn jacobi_orthonormal_vectors() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 3.0], &[2.0, 3.0, 6.0]]);
        let e = jacobi_eigen(&a, 1e-14);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(e.vectors.row(i), e.vectors.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9, "rows {i},{j}: {d}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 3.0], &[2.0, 3.0, 6.0]]);
        let e = jacobi_eigen(&a, 1e-14);
        let trace = 15.0;
        let sum: f64 = e.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }
}
