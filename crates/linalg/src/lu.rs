//! LU decomposition with partial pivoting: linear solves, inverses,
//! determinants.
//!
//! Exact expected hitting times of a random walk solve `(I - Q) h = 1` where
//! `Q` is the transition matrix with the target row/column removed; this
//! module provides that solve.

use crate::matrix::Matrix;

/// An LU factorisation `P A = L U` with partial pivoting.
#[derive(Debug)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

/// Error returned when a matrix is singular to working precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular;

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for Singular {}

impl Lu {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Singular`] if a pivot below `1e-12 * max|A|` is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Lu, Singular> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let tol = 1e-12 * scale.max(1.0);

        for k in 0..n {
            // pivot search
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tol {
                return Err(Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                if f != 0.0 {
                    for j in (k + 1)..n {
                        let update = f * lu[(k, j)];
                        lu[(i, j)] -= update;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Order of the factored matrix.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n);
        // apply permutation
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // forward substitution (unit lower triangle)
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.n();
        assert_eq!(b.rows(), n);
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// The inverse matrix.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.n()))
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// One-shot solve of `A x = b`.
///
/// # Errors
///
/// Returns [`Singular`] if `a` is singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, Singular> {
    Ok(Lu::factor(a)?.solve(b))
}

/// One-shot inverse.
///
/// # Errors
///
/// Returns [`Singular`] if `a` is singular.
pub fn inverse(a: &Matrix) -> Result<Matrix, Singular> {
    Ok(Lu::factor(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // zero in the (0,0) position forces a row swap
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::factor(&a).unwrap_err(), Singular);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_swaps() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn larger_random_system() {
        // deterministic pseudo-random fill
        let n = 40;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = lu.solve_matrix(&b);
        assert!(a.matmul(&x).max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }
}
