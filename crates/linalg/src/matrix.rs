//! Dense row-major `f64` matrix.
//!
//! Sized for the exact Markov-chain computations in this workspace
//! (`n ≲ 4000`). Storage is one flat `Vec<f64>` so row scans are contiguous.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense `rows × cols` matrix of `f64` in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a closure `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds from nested slices (row per inner slice).
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw data slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-matrix product.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop walks both `other.row(k)` and
        // `out.row(i)` contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..orow.len() {
                    out_row[j] += a * orow[j];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "shape mismatch in matvec");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Left vector-matrix product `xᵀ A` (distribution evolution for
    /// row-stochastic transition matrices).
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "shape mismatch in vecmat");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }

    /// `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self * c` (scalar).
    pub fn scale(&self, c: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * c).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Maximum absolute entry difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_vecmat_agree_with_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.vecmat(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]);
        assert!(!a.is_symmetric(0.1));
        assert!(a.is_symmetric(1.0));
    }

    #[test]
    fn add_scale() {
        let a = Matrix::identity(2);
        let b = a.add(&a).scale(0.5);
        assert!(b.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
