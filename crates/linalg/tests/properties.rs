//! Property-based tests of the dense linear algebra on random
//! well-conditioned systems.

use dispersion_linalg::{jacobi_eigen, lu, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random diagonally dominant matrix (guaranteed non-singular).
fn dd_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |i, j| {
            let x: f64 = rng.random::<f64>() - 0.5;
            if i == j {
                x + n as f64
            } else {
                x
            }
        })
    })
}

/// Random symmetric matrix.
fn sym_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..16, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x: f64 = rng.random::<f64>() * 2.0 - 1.0;
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solve_residual_small(a in dd_matrix(), seed in any::<u64>()) {
        let n = a.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        let x = lu::solve(&a, &b).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual {}", (ri - bi).abs());
        }
    }

    #[test]
    fn inverse_roundtrip(a in dd_matrix()) {
        let inv = lu::inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(a.rows())) < 1e-8);
    }

    #[test]
    fn determinant_multiplicative_under_transpose(a in dd_matrix()) {
        let d1 = lu::Lu::factor(&a).unwrap().determinant();
        let d2 = lu::Lu::factor(&a.transpose()).unwrap().determinant();
        prop_assert!((d1 - d2).abs() < 1e-6 * d1.abs().max(1.0));
    }

    #[test]
    fn jacobi_reconstructs_matrix(a in sym_matrix()) {
        // A = Σ λ_k v_k v_kᵀ
        let e = jacobi_eigen(&a, 1e-13);
        let n = a.rows();
        let mut recon = Matrix::zeros(n, n);
        for k in 0..n {
            let v = e.vectors.row(k);
            for i in 0..n {
                for j in 0..n {
                    recon[(i, j)] += e.values[k] * v[i] * v[j];
                }
            }
        }
        prop_assert!(recon.max_abs_diff(&a) < 1e-8, "reconstruction error {}", recon.max_abs_diff(&a));
    }

    #[test]
    fn jacobi_values_sorted_and_trace_preserved(a in sym_matrix()) {
        let e = jacobi_eigen(&a, 1e-13);
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        let trace: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn matmul_associative(seed in any::<u64>(), n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_m = |r: usize, c: usize| {
            Matrix::from_fn(r, c, |_, _| rng.random::<f64>() - 0.5)
        };
        let a = rand_m(n, n);
        let b = rand_m(n, n);
        let c = rand_m(n, n);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn vecmat_is_transpose_matvec(seed in any::<u64>(), n in 2usize..10, m in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, m, |_, _| rng.random::<f64>() - 0.5);
        let x: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let via_vecmat = a.vecmat(&x);
        let via_transpose = a.transpose().matvec(&x);
        for (p, q) in via_vecmat.iter().zip(&via_transpose) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }
}
