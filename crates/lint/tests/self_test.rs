//! Fixture self-tests: every rule has a bad snippet it must fire on (the
//! negative control) and a good snippet it must stay silent on.
//!
//! Fixtures live under `tests/fixtures/` — a directory the workspace
//! walker skips, because they *contain* deliberate violations. Each file's
//! first line is a `//@ path: <pretend workspace path>` directive; the
//! snippet is linted as if it lived there, which is how path-scoped rules
//! (clock-free crates, the engine directory, `src/lib.rs`) get exercised.

use dispersion_lint::lint_source;
use std::fs;
use std::path::PathBuf;

/// `(fixture stem, rule id)` — both `<stem>_bad.rs` and `<stem>_good.rs`
/// must exist for every entry.
const PAIRS: &[(&str, &str)] = &[
    ("no_hash_iter", "no-hash-iter"),
    ("ordering", "ordering-justified"),
    ("wallclock", "no-wallclock"),
    ("rng", "rng-discipline"),
    ("forbid_unsafe", "forbid-unsafe-present"),
    ("no_panic", "engine-no-panic"),
    ("float_reduction", "float-reduction"),
    ("bad_annotation", "bad-annotation"),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Reads a fixture and returns `(pretend_path, source)`.
fn load(name: &str) -> (String, String) {
    let file = fixture_dir().join(name);
    let text = fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", file.display()));
    let first = text.lines().next().unwrap_or("");
    let pretend = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{name}: first line must be `//@ path: <path>`"))
        .trim()
        .to_string();
    (pretend, text)
}

#[test]
fn every_bad_fixture_fires_exactly_its_rule() {
    for (stem, rule) in PAIRS {
        let (path, text) = load(&format!("{stem}_bad.rs"));
        let findings = lint_source(&path, &text);
        assert!(
            !findings.is_empty(),
            "{stem}_bad.rs: expected `{rule}` to fire, got no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{stem}_bad.rs: stray `{}` finding (fixture must isolate `{rule}`): {f}",
                f.rule
            );
        }
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for (stem, _) in PAIRS {
        let (path, text) = load(&format!("{stem}_good.rs"));
        let findings = lint_source(&path, &text);
        assert!(
            findings.is_empty(),
            "{stem}_good.rs: expected clean, got: {}",
            findings
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn fixture_set_is_exactly_the_rule_set() {
    // No unpaired or orphaned fixtures: every file in the directory belongs
    // to a PAIRS entry, and every registered rule plus bad-annotation has a
    // pair.
    let mut names: Vec<String> = fs::read_dir(fixture_dir())
        .expect("fixture dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut expected: Vec<String> = PAIRS
        .iter()
        .flat_map(|(stem, _)| [format!("{stem}_bad.rs"), format!("{stem}_good.rs")])
        .collect();
    expected.sort();
    assert_eq!(names, expected);

    let mut covered: Vec<&str> = PAIRS.iter().map(|(_, rule)| *rule).collect();
    covered.sort_unstable();
    let mut rules: Vec<&str> = dispersion_lint::rules::all()
        .iter()
        .map(|r| r.id())
        .chain([dispersion_lint::rules::BAD_ANNOTATION])
        .collect();
    rules.sort_unstable();
    assert_eq!(covered, rules, "a rule is missing its fixture pair");
}
