//@ path: crates/core/src/notes.rs
// Negative control: three broken escape hatches — a reasonless
// annotation, an unknown rule, and an annotation that suppresses nothing.

// LINT: no-hash-iter-ok
pub fn a() {}

// LINT: no-such-rule-ok — confident typo
pub fn b() {}

// LINT: no-wallclock-ok — nothing below uses a clock
pub fn c() {}
