//@ path: crates/demo/src/lib.rs
// Negative control: a crate root without the forbid(unsafe_code) gate.

pub fn identity(x: u64) -> u64 {
    x
}
