//@ path: crates/core/src/counter.rs
// Negative control: a memory ordering chosen without a written argument.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}
