//@ path: crates/sim/src/sweep.rs
// Negative control: an RNG stream id invented with ad-hoc seed arithmetic
// outside sim::rng — exactly the collision-prone pattern the rule bans.

use crate::rng::Xoshiro256pp;

pub fn sample(seed: u64, k: usize) -> u64 {
    let mut rng = Xoshiro256pp::new(seed ^ (k as u64) << 3);
    rng.next_u64()
}
