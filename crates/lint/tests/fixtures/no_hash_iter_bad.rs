//@ path: crates/core/src/frontier.rs
// Negative control: HashMap in non-test code of a deterministic crate.

use std::collections::HashMap;

pub fn degree_histogram(degrees: &[usize]) -> HashMap<usize, usize> {
    let mut h = HashMap::new();
    for &d in degrees {
        *h.entry(d).or_insert(0) += 1;
    }
    h
}
