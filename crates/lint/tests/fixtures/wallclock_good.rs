//@ path: crates/serve/src/uptime.rs
// Clean: wall-clock use is fine outside the clock-free crates — serve
// reports uptime, bench times throughput.

use std::time::Instant;

pub struct Uptime(Instant);

impl Uptime {
    pub fn start() -> Self {
        Uptime(Instant::now())
    }

    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
