//@ path: crates/core/src/frontier.rs
// Clean: ordered containers in library code, hash containers confined to
// an annotated membership-only use and to test code.

use std::collections::BTreeMap;

pub fn degree_histogram(degrees: &[usize]) -> BTreeMap<usize, usize> {
    let mut h = BTreeMap::new();
    for &d in degrees {
        *h.entry(d).or_insert(0) += 1;
    }
    h
}

pub fn has_duplicates(xs: &[u64]) -> bool {
    // LINT: no-hash-iter-ok — membership-only: inserted into, never iterated
    let mut seen = std::collections::HashSet::new();
    xs.iter().any(|x| !seen.insert(*x))
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_fine_in_tests() {
        let s: HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
