//@ path: crates/demo/src/lib.rs
// Clean: the crate root keeps the workspace-wide unsafe gate.

#![forbid(unsafe_code)]

pub fn identity(x: u64) -> u64 {
    x
}
