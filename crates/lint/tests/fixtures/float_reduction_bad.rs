//@ path: crates/sim/src/aggregate2.rs
// Negative control: a raw f64 sum on the sim layer, bypassing
// stats::Online.

pub fn mean(samples: &[f64]) -> f64 {
    let total: f64 = samples.iter().sum();
    total / samples.len() as f64
}
