//@ path: crates/sim/src/aggregate2.rs
// Clean: reductions fold through the Online accumulator, or carry an
// annotation naming the fixed evaluation order.

use crate::stats::Online;

pub fn mean(samples: &[f64]) -> f64 {
    let mut acc = Online::new();
    for &s in samples {
        acc.push(s);
    }
    acc.mean()
}

pub fn dot(xs: &[f64], ys: &[f64]) -> f64 {
    let s: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    s
}
