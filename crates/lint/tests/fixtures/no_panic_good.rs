//@ path: crates/core/src/engine/merge2.rs
// Clean: fallible paths return errors; the one expect carries its
// invariant; test code panics freely.

pub fn first_active(active: &[usize]) -> Option<usize> {
    active.first().copied()
}

pub fn checked(active: &[usize]) -> usize {
    // LINT: engine-no-panic-ok — invariant: callers pass the round's active
    // list, which is non-empty while any particle is unsettled
    *active.first().expect("active list empty mid-round")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_fine_in_tests() {
        assert_eq!(first_active(&[3]).unwrap(), 3);
    }
}
