//@ path: crates/sim/src/sweep.rs
// Clean: streams derived through trial_seed, plus one annotated
// spec-pinned stream.

use crate::rng::{trial_seed, Xoshiro256pp};

pub fn sample(seed: u64, k: usize) -> u64 {
    let mut rng = Xoshiro256pp::new(trial_seed(seed, k as u64));
    rng.next_u64()
}

pub fn pinned(graph_seed: u64) -> u64 {
    // LINT: rng-discipline-ok — graph_seed is the spec-pinned stream id
    let mut rng = Xoshiro256pp::new(graph_seed);
    rng.next_u64()
}
