//@ path: crates/core/src/counter.rs
// Clean: every ordering carries an adjacent justification comment.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    // ORDERING: Relaxed — monotone statistics counter, readers tolerate lag
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(c: &AtomicUsize) -> usize {
    c.load(Ordering::Acquire) // ORDERING: Acquire — pairs with publish Release
}
