//@ path: crates/core/src/notes.rs
// Clean: one well-formed annotation actually covering a violation.

pub fn has_duplicates(xs: &[u64]) -> bool {
    // LINT: no-hash-iter-ok — membership-only: inserted into, never iterated
    let mut seen = std::collections::HashSet::new();
    xs.iter().any(|x| !seen.insert(*x))
}
