//@ path: crates/sim/src/runner2.rs
// Negative control: wall-clock time on a measurement path of a clock-free
// crate.

use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}
