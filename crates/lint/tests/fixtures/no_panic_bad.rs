//@ path: crates/core/src/engine/merge2.rs
// Negative control: a bare unwrap in an engine hot path.

pub fn first_active(active: &[usize]) -> usize {
    *active.first().unwrap()
}
