//! The gate: the workspace itself must lint clean, and the contract must
//! have teeth — re-introducing a violation or deleting an annotation has
//! to surface a finding.

use dispersion_lint::{engine, lint_source};
use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    root.canonicalize().expect("workspace root")
}

#[test]
fn workspace_lints_clean() {
    let findings = engine::lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "dispersion-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn reintroducing_an_ad_hoc_rng_fails() {
    // The acceptance bar from the contract: a seeded RNG constructed with
    // ad-hoc arithmetic outside sim::rng must be caught.
    let path = "crates/sim/src/experiment.rs";
    let abs = workspace_root().join(path);
    let mut text = fs::read_to_string(&abs).expect("read experiment.rs");
    assert!(
        lint_source(path, &text).is_empty(),
        "baseline must be clean"
    );
    text.push_str(
        "\npub fn rogue(seed: u64, k: usize) -> crate::rng::Xoshiro256pp {\n    \
         crate::rng::Xoshiro256pp::new(seed ^ (k as u64) << 3)\n}\n",
    );
    let findings = lint_source(path, &text);
    assert!(
        findings.iter().any(|f| f.rule == "rng-discipline"),
        "expected rng-discipline to fire on the rogue constructor, got: {findings:?}"
    );
}

#[test]
fn dropping_forbid_unsafe_fails() {
    let path = "crates/core/src/lib.rs";
    let abs = workspace_root().join(path);
    let text = fs::read_to_string(&abs).expect("read core lib.rs");
    let stripped = text.replace("#![forbid(unsafe_code)]", "");
    assert_ne!(text, stripped, "core lib.rs must carry the forbid gate");
    let findings = lint_source(path, &stripped);
    assert!(
        findings.iter().any(|f| f.rule == "forbid-unsafe-present"),
        "expected forbid-unsafe-present to fire, got: {findings:?}"
    );
}
