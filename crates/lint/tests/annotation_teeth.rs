//! Every allow-annotation in the workspace must be load-bearing: disabling
//! any single one has to produce at least one finding. This is what keeps
//! the escape hatch honest — an annotation that suppresses nothing is
//! either already flagged as unused, or (worse) would rot silently; this
//! test closes the second case by construction.

use dispersion_lint::source::SourceFile;
use dispersion_lint::{engine, lint_source};
use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn every_annotation_is_load_bearing() {
    let root = workspace_root();
    let mut annotations_checked = 0usize;
    for (rel, abs) in engine::collect_files(&root).expect("walk workspace") {
        let text = fs::read_to_string(&abs).expect("read source");
        if !text.contains("LINT:") {
            continue;
        }
        // Ask the real parser where the annotations are — it already skips
        // doc-comment prose and string literals that merely quote the
        // syntax, so this test can't chase false markers.
        let parsed = SourceFile::parse(&rel, &text);
        let lines: Vec<&str> = text.lines().collect();
        for ann in &parsed.annotations {
            let i = ann.line as usize - 1;
            let line = lines[i];
            let pos = line.rfind("LINT:").expect("annotation line has marker");
            // Disable just this marker, keeping line numbers intact.
            let mut disabled = lines.clone();
            let patched = format!(
                "{}lint-disabled:{}",
                &line[..pos],
                &line[pos + "LINT:".len()..]
            );
            disabled[i] = &patched;
            let modified = disabled.join("\n");
            let findings = lint_source(&rel, &modified);
            assert!(
                !findings.is_empty(),
                "{rel}:{}: deleting this annotation produced no finding — it is \
                 not load-bearing:\n    {}",
                ann.line,
                line.trim()
            );
            annotations_checked += 1;
        }
    }
    assert!(
        annotations_checked >= 10,
        "expected to exercise the workspace's annotations, found only \
         {annotations_checked} — did the walker skip them?"
    );
}
