//! The driver: file collection, rule application, annotation filtering.
//!
//! `lint_source` is the whole pipeline for one file and is deliberately
//! public — the self-tests and the annotation-teeth tests feed it modified
//! file contents under pretend paths. `lint_workspace` walks the repo,
//! skipping `vendor/` (external stand-ins), `target/`, and any
//! `fixtures/` directory (lint fixtures *contain* deliberate violations).
//!
//! Output is deterministic: files are visited in sorted path order and
//! findings are sorted by `(path, line, rule)` — a lint whose own output
//! depended on directory-iteration order would be a poor determinism
//! checker.

use crate::rules::{self, Finding, BAD_ANNOTATION};
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", ".github"];

/// Lints one file's `text` as if it lived at workspace-relative `path`.
///
/// Applies every registered rule, removes findings covered by a
/// `LINT: <rule>-ok — <reason>` annotation, and appends `bad-annotation`
/// findings for malformed, unknown-rule, or unused annotations.
pub fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, text);
    let mut raw = Vec::new();
    for rule in rules::all() {
        rule.check(&file, &mut raw);
    }

    let mut used = vec![false; file.annotations.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let mut covered = false;
            for (ai, ann) in file.annotations.iter().enumerate() {
                if ann.covers(f.rule, f.line) {
                    used[ai] = true;
                    covered = true;
                }
            }
            !covered
        })
        .collect();

    for (ai, ann) in file.annotations.iter().enumerate() {
        if let Some(problem) = &ann.malformed {
            findings.push(Finding {
                rule: BAD_ANNOTATION,
                path: path.to_string(),
                line: ann.line,
                msg: problem.clone(),
            });
        } else if !rules::known_rule(&ann.rule) {
            findings.push(Finding {
                rule: BAD_ANNOTATION,
                path: path.to_string(),
                line: ann.line,
                msg: format!(
                    "annotation allows unknown rule `{}` — known rules: {}",
                    ann.rule,
                    rules::all()
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        } else if !used[ai] {
            findings.push(Finding {
                rule: BAD_ANNOTATION,
                path: path.to_string(),
                line: ann.line,
                msg: format!(
                    "unused annotation `LINT: {}-ok` — it suppresses nothing on this or \
                     the next line; remove it or move it to the violation",
                    ann.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collects workspace `.rs` files under `root`, as
/// `(relative_path, absolute_path)` pairs in sorted path order.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Lints the whole workspace under `root`. Findings come back sorted by
/// `(path, line, rule)`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in collect_files(root)? {
        let text = fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &text));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_suppresses_and_is_used() {
        let src = "// LINT: no-hash-iter-ok — membership-only: never iterated\n\
                   use std::collections::HashSet;\n";
        let out = lint_source("crates/graphs/src/x.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn deleting_the_annotation_fails() {
        let src = "use std::collections::HashSet;\n";
        let out = lint_source("crates/graphs/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-hash-iter");
    }

    #[test]
    fn unused_annotation_is_a_finding() {
        let src = "// LINT: no-hash-iter-ok — nothing here needs this\nfn f() {}\n";
        let out = lint_source("crates/graphs/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, BAD_ANNOTATION);
        assert!(out[0].msg.contains("unused"));
    }

    #[test]
    fn unknown_rule_annotation_is_a_finding() {
        let src = "// LINT: no-such-rule-ok — typo\nuse std::collections::HashSet;\n";
        let out = lint_source("crates/graphs/src/x.rs", src);
        assert_eq!(out.len(), 2); // the HashSet finding + the bad annotation
        assert!(out.iter().any(|f| f.rule == BAD_ANNOTATION));
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let src = "// LINT: no-hash-iter-ok\nuse std::collections::HashSet;\n";
        let out = lint_source("crates/graphs/src/x.rs", src);
        assert!(out.iter().any(|f| f.rule == BAD_ANNOTATION));
        assert!(out.iter().any(|f| f.rule == "no-hash-iter"));
    }

    #[test]
    fn findings_sorted_by_line() {
        let src = "use std::collections::HashSet;\nuse std::collections::HashMap;\n";
        let out = lint_source("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
    }
}
