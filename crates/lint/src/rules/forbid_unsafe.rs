//! `forbid-unsafe-present` — every crate root keeps `#![forbid(unsafe_code)]`.
//!
//! The whole workspace is safe Rust and the concurrency story (atomic
//! bitset, scoped walker threads, the serve job store) leans on the
//! compiler for data-race freedom. `forbid` (not `deny`) is the right
//! strength: it cannot be overridden by an inner `#[allow]`, so a future
//! "just one little `unsafe` block" has to come through this lint and the
//! crate manifest, not slip in under an attribute. The rule checks that
//! every `src/lib.rs` in the workspace carries the attribute.

use super::{Finding, Rule};
use crate::source::SourceFile;

pub struct ForbidUnsafePresent;

impl Rule for ForbidUnsafePresent {
    fn id(&self) -> &'static str {
        "forbid-unsafe-present"
    }

    fn description(&self) -> &'static str {
        "every crate's lib.rs must carry #![forbid(unsafe_code)]"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if !f.path.ends_with("src/lib.rs") {
            return;
        }
        // look for `# ! [ forbid ( unsafe_code ) ]` anywhere in the stream
        for i in 0..f.tokens.len() {
            if f.punct(i, b'#')
                && f.punct(i + 1, b'!')
                && f.punct(i + 2, b'[')
                && f.ident(i + 3) == Some("forbid")
                && f.punct(i + 4, b'(')
                && f.ident(i + 5) == Some("unsafe_code")
                && f.punct(i + 6, b')')
                && f.punct(i + 7, b']')
            {
                return;
            }
        }
        out.push(Finding {
            rule: self.id(),
            path: f.path.clone(),
            line: 1,
            msg: "crate root lacks #![forbid(unsafe_code)] — the workspace is safe Rust \
                  and the data-race-freedom argument depends on it"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        ForbidUnsafePresent.check(&f, &mut out);
        out
    }

    #[test]
    fn present_is_clean() {
        let src = "//! Crate docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(findings("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn absent_fires() {
        let out = findings("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn deny_is_not_forbid() {
        let out = findings("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn only_lib_rs_is_checked() {
        assert!(findings("crates/core/src/engine/mod.rs", "pub fn f() {}").is_empty());
        assert!(findings("crates/serve/src/main.rs", "fn main() {}").is_empty());
    }

    #[test]
    fn commented_out_attribute_does_not_count() {
        let out = findings("crates/core/src/lib.rs", "// #![forbid(unsafe_code)]\n");
        assert_eq!(out.len(), 1);
    }
}
