//! `engine-no-panic` — the engine hot paths fail with `EngineError`, not
//! panics.
//!
//! PR 3 made the engine `Result`-returning precisely so that drivers can
//! report partial progress at large `n` instead of dying mid-campaign; a
//! stray `unwrap()` reintroduces the abort path. In
//! `crates/core/src/engine/*` non-test code, `unwrap`/`expect` calls and
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` invocations must either
//! be converted to an [`EngineError`] variant or be annotated with the
//! invariant that makes them unreachable
//! (`LINT: engine-no-panic-ok — invariant: <why this cannot fire>`).
//!
//! Documented configuration `assert!`s (precondition validation listed
//! under `# Panics` in the API docs) are deliberately *not* flagged:
//! rejecting an impossible configuration eagerly is part of the API
//! contract, while a panic *after* the run started destroys work.
//!
//! Approximation: matches the exact identifiers `unwrap`/`expect` in
//! method position (so `unwrap_or`, `unwrap_or_default`, `expect_err` do
//! not fire) and the panic-family macros by `name !`.

use super::{Finding, Rule};
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Path fragment selecting the engine hot-path modules.
const ENGINE_DIR: &str = "crates/core/src/engine/";

pub struct EngineNoPanic;

impl Rule for EngineNoPanic {
    fn id(&self) -> &'static str {
        "engine-no-panic"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! in engine hot paths unless annotated with the invariant"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if !f.path.starts_with(ENGINE_DIR) || f.is_test_code() {
            return;
        }
        for i in 0..f.tokens.len() {
            let Some(name) = f.ident(i) else { continue };
            let line = f.line(i);
            if f.in_test_region(line) {
                continue;
            }
            let what = if (name == "unwrap" || name == "expect")
                && i > 0
                && f.punct(i - 1, b'.')
                && f.punct(i + 1, b'(')
            {
                format!(".{name}()")
            } else if PANIC_MACROS.contains(&name) && f.punct(i + 1, b'!') {
                format!("{name}!")
            } else {
                continue;
            };
            out.push(Finding {
                rule: self.id(),
                path: f.path.clone(),
                line,
                msg: format!(
                    "{what} in an engine hot path: return an EngineError variant, or annotate \
                     the invariant that makes this unreachable"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/core/src/engine/mod.rs", src);
        let mut out = Vec::new();
        EngineNoPanic.check(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_fire() {
        let out = findings("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn panic_family_fires() {
        let out = findings("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fallible_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn asserts_do_not_fire() {
        assert!(
            findings("fn f() { assert!(k >= 1, \"bad k\"); debug_assert_eq!(a, b); }").is_empty()
        );
    }

    #[test]
    fn other_core_files_out_of_scope() {
        let f = SourceFile::parse("crates/core/src/outcome.rs", "fn f() { x.unwrap(); }");
        let mut out = Vec::new();
        EngineNoPanic.check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_module_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(findings(src).is_empty());
    }
}
