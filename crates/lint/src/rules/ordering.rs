//! `ordering-justified` — every atomic memory ordering carries its proof.
//!
//! The workspace uses atomics in exactly three places with three distinct
//! soundness arguments (the monotone occupancy bitset, the serve job
//! counters, the runner's cancel flag). Each argument is easy to state and
//! easy to silently invalidate in a refactor — e.g. a `Relaxed` load that
//! was fine while the bitset was monotone becomes a race the day someone
//! adds an unsettle path. The rule forces the argument to live next to the
//! code: every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` use
//! in non-test code must have a comment containing `ORDERING:` on the same
//! line or within the four lines above it (one justification block may
//! cover a tight cluster of uses).
//!
//! Approximation: matches the token path `Ordering::<mode>`, so `use
//! std::sync::atomic::Ordering` itself does not fire, and `cmp::Ordering`
//! variants (`Less`/`Equal`/`Greater`) are never matched.

use super::{Finding, Rule};
use crate::source::SourceFile;

const MODES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines above a use the `ORDERING:` comment may sit.
const WINDOW: u32 = 4;

pub struct OrderingJustified;

impl Rule for OrderingJustified {
    fn id(&self) -> &'static str {
        "ordering-justified"
    }

    fn description(&self) -> &'static str {
        "every atomic Ordering::* use needs an adjacent `// ORDERING:` justification"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.is_test_code() {
            return;
        }
        for i in 0..f.tokens.len() {
            if f.ident(i) != Some("Ordering") || !f.punct(i + 1, b':') || !f.punct(i + 2, b':') {
                continue;
            }
            let Some(mode) = f.ident(i + 3) else { continue };
            if !MODES.contains(&mode) {
                continue;
            }
            let line = f.line(i);
            if f.in_test_region(line) || f.comment_near(line, WINDOW, "ORDERING:") {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                path: f.path.clone(),
                line,
                msg: format!(
                    "Ordering::{mode} without an adjacent `// ORDERING:` justification — \
                     state why this ordering is sufficient (within {WINDOW} lines above)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/serve/src/x.rs", src);
        let mut out = Vec::new();
        OrderingJustified.check(&f, &mut out);
        out
    }

    #[test]
    fn unjustified_load_fires() {
        let out = findings("fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("Relaxed"));
    }

    #[test]
    fn justified_same_line_or_above() {
        let same = "let x = c.load(Ordering::Relaxed); // ORDERING: monotone counter";
        assert!(findings(same).is_empty());
        let above = "// ORDERING: monotone counter, stale reads only under-report\nlet x = c.load(Ordering::Acquire);";
        assert!(findings(above).is_empty());
    }

    #[test]
    fn one_block_covers_a_cluster() {
        let src = "// ORDERING: all three fields are independent stats counters\n\
                   a.store(1, Ordering::Relaxed);\n\
                   b.store(2, Ordering::Relaxed);\n\
                   c.store(3, Ordering::Relaxed);\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn window_is_bounded() {
        let src = "// ORDERING: far away\n\n\n\n\n\nc.load(Ordering::SeqCst);";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        assert!(findings("fn f() -> Ordering { Ordering::Less }").is_empty());
        assert!(findings("use std::sync::atomic::Ordering;").is_empty());
    }

    #[test]
    fn import_rename_path_still_fires() {
        let out = findings("c.load(atomic::Ordering::Relaxed);");
        assert_eq!(out.len(), 1);
    }
}
