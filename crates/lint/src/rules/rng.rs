//! `rng-discipline` — all randomness flows through the derivation helpers.
//!
//! The determinism contract assigns every trial its own RNG stream by
//! *construction*: trial `t` of cell `c` always runs on
//! `Xoshiro256pp::new(trial_seed(master(c), t))`, which is what makes
//! thread counts, shard placement, and checkpoint resume invisible in the
//! output. An ad-hoc seed (`Xoshiro256pp::new(seed ^ k << 3)`) silently
//! re-creates the pre-PR-5 world: streams that collide, overlap, or shift
//! when a loop is reordered. Outside `sim::rng` (where the generator and
//! the helpers live) and `vendor/`, non-test code may only construct RNGs
//! from the derivation helpers `trial_seed`/`splitmix64`, and may not
//! reach for entropy sources at all.
//!
//! Flags, in non-test code of every first-party crate except
//! `crates/sim/src/rng.rs`:
//!
//! * `Xoshiro256pp::new(...)`, `seed_from_u64(...)`, `from_seed(...)`
//!   whose argument tokens do not mention a derivation helper;
//! * `thread_rng` / `from_entropy` / `from_os_rng` / `random_seed`
//!   unconditionally (no entropy in a reproduction).
//!
//! Approximation: "uses a helper" means the balanced argument list contains
//! the identifier `trial_seed` or `splitmix64`. A spec-pinned stream id
//! passed verbatim (e.g. the graph-realization seed a spec carries) is a
//! legitimate exception — annotate it.

use super::{Finding, Rule};
use crate::source::SourceFile;

const HELPERS: &[&str] = &["trial_seed", "splitmix64"];
const ENTROPY: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "random_seed"];
const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed"];

/// The one module allowed to do raw seed arithmetic.
const RNG_HOME: &str = "crates/sim/src/rng.rs";

pub struct RngDiscipline;

impl Rule for RngDiscipline {
    fn id(&self) -> &'static str {
        "rng-discipline"
    }

    fn description(&self) -> &'static str {
        "RNG construction outside sim::rng must derive seeds via trial_seed/splitmix64"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.is_test_code() || f.path == RNG_HOME {
            return;
        }
        for i in 0..f.tokens.len() {
            let Some(name) = f.ident(i) else { continue };
            let line = f.line(i);
            if f.in_test_region(line) {
                continue;
            }
            if ENTROPY.contains(&name) {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line,
                    msg: format!(
                        "`{name}`: entropy-seeded RNGs are banned everywhere — every stream \
                         must be reproducible from the experiment seed"
                    ),
                });
                continue;
            }
            // constructor call patterns: `name (` directly, or
            // `Xoshiro256pp :: new (`
            let (ctor, open) = if CONSTRUCTORS.contains(&name) && f.punct(i + 1, b'(') {
                (name.to_string(), i + 1)
            } else if name == "Xoshiro256pp"
                && f.punct(i + 1, b':')
                && f.punct(i + 2, b':')
                && f.ident(i + 3) == Some("new")
                && f.punct(i + 4, b'(')
            {
                ("Xoshiro256pp::new".to_string(), i + 4)
            } else {
                continue;
            };
            let close = f.close_paren(open);
            let derived =
                (open..close).any(|j| f.ident(j).map(|id| HELPERS.contains(&id)).unwrap_or(false));
            if derived {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                path: f.path.clone(),
                line,
                msg: format!(
                    "`{ctor}` with an ad-hoc seed: derive the stream via \
                     trial_seed/splitmix64 (sim::rng), or annotate a spec-pinned stream id"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        RngDiscipline.check(&f, &mut out);
        out
    }

    #[test]
    fn ad_hoc_seed_fires() {
        let out = findings(
            "crates/bench/src/bin/x.rs",
            "let mut g = Xoshiro256pp::new(opts.seed ^ (k as u64) << 3);",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("ad-hoc"));
    }

    #[test]
    fn derived_seed_is_clean() {
        let src = "let mut g = Xoshiro256pp::new(trial_seed(master, t as u64));";
        assert!(findings("crates/sim/src/runner.rs", src).is_empty());
        let multi = "let mut g = Xoshiro256pp::new(\n    trial_seed(master, t),\n);";
        assert!(findings("crates/sim/src/runner.rs", multi).is_empty());
    }

    #[test]
    fn seed_from_u64_fires_without_helper() {
        let out = findings(
            "crates/core/src/x.rs",
            "let mut r = StdRng::seed_from_u64(7);",
        );
        assert_eq!(out.len(), 1);
        assert!(findings(
            "crates/core/src/x.rs",
            "let mut r = StdRng::seed_from_u64(trial_seed(s, 0));",
        )
        .is_empty());
    }

    #[test]
    fn entropy_always_fires() {
        let out = findings("crates/serve/src/x.rs", "let mut r = rand::thread_rng();");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn rng_home_and_tests_exempt() {
        assert!(findings(RNG_HOME, "let mut r = Xoshiro256pp::new(1);").is_empty());
        assert!(findings(
            "crates/core/tests/x.rs",
            "let mut r = StdRng::seed_from_u64(7);"
        )
        .is_empty());
        let cfg_test =
            "#[cfg(test)]\nmod tests {\n fn t() { let r = StdRng::seed_from_u64(1); }\n}";
        assert!(findings("crates/core/src/x.rs", cfg_test).is_empty());
    }
}
