//! `no-hash-iter` — no `HashMap`/`HashSet` in deterministic crates.
//!
//! The engine's bit-reproducibility contract (identical outcomes across
//! `--threads`, `--walker-threads`, backends, and checkpoint resume) dies
//! the moment any result depends on hash-map iteration order: `std`'s
//! hasher is `RandomState`-seeded per process, so two runs of the *same
//! binary* can iterate the same map differently. Rather than audit every
//! use site for "do we ever iterate?", the deterministic crates (`core`,
//! `sim`, `graphs`) ban the types outright in non-test code. Genuinely
//! order-free uses (pure membership tests that are never iterated) must be
//! annotated `LINT: no-hash-iter-ok — membership-only: <why>` so the claim
//! is visible in the diff — though the preferred fix is a sorted `Vec` or
//! `BTreeSet`, which makes order-independence structural instead of
//! claimed.
//!
//! Approximation: flags the *identifiers* `HashMap`/`HashSet` (including
//! `use` statements), not constructions reached through aliases.

use super::{Finding, Rule};
use crate::source::SourceFile;

/// Crates whose outputs are covered by the determinism contract.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "graphs"];

pub struct NoHashIter;

impl Rule for NoHashIter {
    fn id(&self) -> &'static str {
        "no-hash-iter"
    }

    fn description(&self) -> &'static str {
        "forbid HashMap/HashSet in non-test code of deterministic crates (core, sim, graphs)"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.is_test_code() || !DETERMINISTIC_CRATES.contains(&f.krate.as_str()) {
            return;
        }
        for i in 0..f.tokens.len() {
            let Some(name) = f.ident(i) else { continue };
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            let line = f.line(i);
            if f.in_test_region(line) {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                path: f.path.clone(),
                line,
                msg: format!(
                    "{name} in deterministic crate `{}`: iteration order is per-process random; \
                     use a sorted Vec/BTree structure, or annotate a pure membership-only use",
                    f.krate
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        NoHashIter.check(&f, &mut out);
        out
    }

    #[test]
    fn fires_in_core_non_test() {
        let out = findings(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn silent_in_serve_and_tests() {
        assert!(findings("crates/serve/src/x.rs", "use std::collections::HashMap;").is_empty());
        assert!(findings("crates/core/tests/x.rs", "use std::collections::HashMap;").is_empty());
        let cfg_test = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}";
        assert!(findings("crates/core/src/x.rs", cfg_test).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// a HashMap would be wrong here\nfn f() -> &'static str { \"HashSet\" }";
        assert!(findings("crates/sim/src/x.rs", src).is_empty());
    }
}
