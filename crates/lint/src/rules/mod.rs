//! The rule registry.
//!
//! Every rule is a token-pattern judgement over one [`SourceFile`], scoped
//! by path class and crate (see each rule's module doc for its exact scope
//! and the approximation it makes). Rules report raw findings; the engine
//! (`crate::engine`) filters out findings covered by a `LINT: <rule>-ok`
//! annotation and turns malformed or unused annotations into findings of
//! their own, so the escape hatch stays visible and accurate.

use crate::source::SourceFile;

mod float_reduction;
mod forbid_unsafe;
mod hash_iter;
mod no_panic;
mod ordering;
mod rng;
mod wallclock;

pub use float_reduction::FloatReduction;
pub use forbid_unsafe::ForbidUnsafePresent;
pub use hash_iter::NoHashIter;
pub use no_panic::EngineNoPanic;
pub use ordering::OrderingJustified;
pub use rng::RngDiscipline;
pub use wallclock::NoWallclock;

/// Rule id reserved for the annotation machinery itself (malformed,
/// unknown-rule, or unused `LINT:` comments).
pub const BAD_ANNOTATION: &str = "bad-annotation";

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-hash-iter`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human message; states what fired and what the accepted fixes are.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// A contract rule: scoping + token-pattern check over one file.
pub trait Rule {
    /// Stable kebab-case id used in diagnostics and annotations.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Appends raw findings for `file` (annotation filtering happens in the
    /// engine).
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// The full registry, in diagnostic order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoHashIter),
        Box::new(OrderingJustified),
        Box::new(NoWallclock),
        Box::new(RngDiscipline),
        Box::new(ForbidUnsafePresent),
        Box::new(EngineNoPanic),
        Box::new(FloatReduction),
    ]
}

/// Whether `id` names a registered rule (annotations may also allow
/// `bad-annotation` itself — they may not).
pub fn known_rule(id: &str) -> bool {
    all().iter().any(|r| r.id() == id)
}
