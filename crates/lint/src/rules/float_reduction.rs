//! `float-reduction` — f64 reductions in the sim layer go through
//! `stats::Online`.
//!
//! Floating-point addition is not associative, so a raw `.sum()` over
//! sample values produces different bits depending on accumulation order —
//! the exact degree of freedom the runner nails down by merging Welford
//! accumulators at fixed chunk boundaries in chunk order. A new `.sum()`
//! in the sim layer either re-creates order sensitivity or silently loses
//! the min/max/M2 tracking the sinks expect. The rule flags statements in
//! `crates/sim/src` non-test code that both mention `f64` and call
//! `.sum(` / `.product(`, unless the statement also mentions `Online`
//! (folding into the accumulator is the sanctioned reduction).
//!
//! Approximation: lexical statement = tokens between `;`/`{`/`}`
//! boundaries; "is an f64 reduction" = the statement names `f64` (a let
//! type ascription or a turbofish). Integer sums (`let n: u64 = …sum()`)
//! never fire. Fixed-length analytic reductions (an OLS fit over a handful
//! of sweep points) are legitimate exceptions — annotate them.

use super::{Finding, Rule};
use crate::source::SourceFile;

pub struct FloatReduction;

impl Rule for FloatReduction {
    fn id(&self) -> &'static str {
        "float-reduction"
    }

    fn description(&self) -> &'static str {
        "raw f64 .sum()/.product() in the sim layer must use stats::Online or be annotated"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.is_test_code() || !f.path.starts_with("crates/sim/src/") {
            return;
        }
        // statement boundaries: indices right after `;`, `{`, `}`
        let mut stmt_start = 0usize;
        let mut i = 0usize;
        while i < f.tokens.len() {
            if f.punct(i, b';') || f.punct(i, b'{') || f.punct(i, b'}') {
                self.check_stmt(f, stmt_start, i, out);
                stmt_start = i + 1;
            }
            i += 1;
        }
        self.check_stmt(f, stmt_start, f.tokens.len(), out);
    }
}

impl FloatReduction {
    fn check_stmt(&self, f: &SourceFile, lo: usize, hi: usize, out: &mut Vec<Finding>) {
        let mut mentions_f64 = false;
        let mut mentions_online = false;
        let mut reduction: Option<(usize, &'static str)> = None;
        for j in lo..hi {
            match f.ident(j) {
                Some("f64") => mentions_f64 = true,
                Some("Online") => mentions_online = true,
                Some("sum") if f.punct(j.wrapping_sub(1), b'.') => {
                    reduction = reduction.or(Some((j, "sum")));
                }
                Some("product") if f.punct(j.wrapping_sub(1), b'.') => {
                    reduction = reduction.or(Some((j, "product")));
                }
                _ => {}
            }
        }
        let Some((j, what)) = reduction else { return };
        if !mentions_f64 || mentions_online {
            return;
        }
        let line = f.line(j);
        if f.in_test_region(line) {
            return;
        }
        out.push(Finding {
            rule: self.id(),
            path: f.path.clone(),
            line,
            msg: format!(
                "raw f64 .{what}() in the sim layer: accumulation order becomes \
                 observable — fold through stats::Online, or annotate a fixed-order \
                 analytic reduction"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/sim/src/fit.rs", src);
        let mut out = Vec::new();
        FloatReduction.check(&f, &mut out);
        out
    }

    #[test]
    fn ascribed_f64_sum_fires() {
        let out = findings("fn f(xs: &[f64]) { let s: f64 = xs.iter().sum(); }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn turbofish_f64_sum_fires() {
        let out = findings("fn f(xs: &[f64]) { let s = xs.iter().sum::<f64>(); }");
        // the fn signature line is a separate "statement" (brace boundary),
        // so only the let fires
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn integer_sum_is_clean() {
        assert!(findings("fn f(xs: &[u64]) { let s: u64 = xs.iter().sum(); }").is_empty());
    }

    #[test]
    fn online_fold_is_clean() {
        let src = "fn f(xs: &[f64]) { let mut o = Online::new(); let s: f64 = fold_online(&mut o, xs).sum_proxy(); }";
        // statement mentions Online -> sanctioned
        assert!(findings(src).is_empty());
    }

    #[test]
    fn out_of_scope_paths_clean() {
        let f = SourceFile::parse(
            "crates/bench/src/bin/x.rs",
            "fn f(xs: &[f64]) { let s: f64 = xs.iter().sum(); }",
        );
        let mut out = Vec::new();
        FloatReduction.check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_line_statement_caught() {
        let src = "fn f(xs: &[f64]) { let ss: f64 = xs\n.iter()\n.map(|x| x * x)\n.sum(); }";
        assert_eq!(findings(src).len(), 1);
    }
}
