//! `no-wallclock` — no wall-clock reads in the deterministic pipeline.
//!
//! A run of the engine or the spec runner must be a pure function of
//! `(spec, seed)`: that is what makes checkpoint resume byte-identical and
//! lets the serve soak diff streams across a SIGKILL. `Instant::now()` /
//! `SystemTime` inside `core` or `sim` would let timing leak into results
//! (adaptive budgets that stop "after a second", time-salted tie-breaks,
//! …) — exactly the class of bug that reproduces on no one else's machine.
//! Timing belongs to the drivers: `bench` binaries and `serve` metrics
//! read clocks freely (exempt by path), the measured pipeline never does.
//!
//! Scope: non-test code of `crates/core` and `crates/sim`. Flags
//! `Instant::now` and any mention of `SystemTime`.

use super::{Finding, Rule};
use crate::source::SourceFile;

/// Crates whose outputs must be a pure function of `(spec, seed)`.
const CLOCK_FREE_CRATES: &[&str] = &["core", "sim"];

pub struct NoWallclock;

impl Rule for NoWallclock {
    fn id(&self) -> &'static str {
        "no-wallclock"
    }

    fn description(&self) -> &'static str {
        "ban Instant::now/SystemTime in core and sim (bench/serve drivers exempt by path)"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.is_test_code() || !CLOCK_FREE_CRATES.contains(&f.krate.as_str()) {
            return;
        }
        for i in 0..f.tokens.len() {
            let hit = match f.ident(i) {
                Some("SystemTime") => Some("SystemTime"),
                Some("Instant")
                    if f.punct(i + 1, b':')
                        && f.punct(i + 2, b':')
                        && f.ident(i + 3) == Some("now") =>
                {
                    Some("Instant::now")
                }
                _ => None,
            };
            let Some(what) = hit else { continue };
            let line = f.line(i);
            if f.in_test_region(line) {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                path: f.path.clone(),
                line,
                msg: format!(
                    "{what} in `{}`: results must be a pure function of (spec, seed); \
                     move timing into the bench/serve drivers",
                    f.krate
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        NoWallclock.check(&f, &mut out);
        out
    }

    #[test]
    fn instant_now_in_sim_fires() {
        let out = findings("crates/sim/src/runner.rs", "let t0 = Instant::now();");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn system_time_in_core_fires() {
        let out = findings(
            "crates/core/src/engine/mod.rs",
            "use std::time::SystemTime;",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn bench_and_serve_exempt() {
        assert!(findings("crates/bench/src/bin/x.rs", "let t0 = Instant::now();").is_empty());
        assert!(findings("crates/serve/src/metrics.rs", "let t0 = Instant::now();").is_empty());
    }

    #[test]
    fn instant_type_position_alone_is_fine() {
        // storing a Duration/Instant handed in by a driver is not a read
        assert!(findings("crates/sim/src/x.rs", "fn f(deadline: Instant) {}").is_empty());
    }
}
