//! Source-file model: lexed tokens plus the path/region classification the
//! rules scope themselves by.
//!
//! Two orthogonal classifications exist:
//!
//! * **Path class** — where the file lives. Anything under a `tests/`,
//!   `benches/`, `examples/` or `fixtures/` directory is test/driver code
//!   and exempt from the runtime-determinism rules; `vendor/` is never
//!   lexed at all (the stand-ins mimic external crates, their internals are
//!   not ours to police).
//! * **Test regions** — `#[cfg(test)]` items inside production files. The
//!   brace-matched span of each such item is recorded as line ranges, and
//!   every rule checks `file.in_test_region(line)` before reporting.

use crate::annotations::Annotation;
use crate::lexer::{lex, Comment, Lexed, Spanned, Tok};

/// Which crate a path belongs to, as a lint-relevant coarse class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathClass {
    /// Library / binary source of a first-party crate.
    Source,
    /// Integration tests, benches, examples, fixtures: driver code.
    TestOrBench,
}

/// One file, lexed and classified, ready for the rules.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate name derived from the path (`core`, `sim`, ..., or `repro`
    /// for the umbrella's own `src`/`tests`).
    pub krate: String,
    pub class: PathClass,
    pub tokens: Vec<Spanned>,
    pub comments: Vec<Comment>,
    /// Allow-annotations parsed from the comments.
    pub annotations: Vec<Annotation>,
    /// 1-indexed inclusive line ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` as the file at workspace-relative `path`.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(text);
        let test_regions = find_test_regions(&tokens);
        let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let annotations = crate::annotations::parse(path, &comments, &code_lines);
        SourceFile {
            path: path.to_string(),
            krate: crate_of(path),
            class: classify(path),
            tokens,
            comments,
            annotations,
            test_regions,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether the whole file is exempt driver/test code by path.
    pub fn is_test_code(&self) -> bool {
        self.class == PathClass::TestOrBench
    }

    /// Ident text at token index `i`, if it is an ident.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|s| &s.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether token `i` is the punct `p`.
    pub fn punct(&self, i: usize, p: u8) -> bool {
        matches!(self.tokens.get(i).map(|s| &s.tok), Some(Tok::Punct(q)) if *q == p)
    }

    /// Line of token `i` (0 if out of range — only possible on empty files).
    pub fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|s| s.line).unwrap_or(0)
    }

    /// Whether any comment whose text contains `needle` ends on `line`
    /// itself or within the `above` lines immediately before it.
    pub fn comment_near(&self, line: u32, above: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line <= line && c.end_line + above >= line && c.text.contains(needle))
    }

    /// Index of the token closing the balanced `(...)` group opened at
    /// token `open` (which must be `(`), or `tokens.len()` if unterminated.
    pub fn close_paren(&self, open: usize) -> usize {
        debug_assert!(self.punct(open, b'('));
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            if let Tok::Punct(p) = self.tokens[i].tok {
                match p {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.tokens.len()
    }
}

fn classify(path: &str) -> PathClass {
    let test_dirs = ["tests/", "benches/", "examples/", "fixtures/"];
    if test_dirs
        .iter()
        .any(|d| path.starts_with(d) || path.contains(&format!("/{d}")))
    {
        PathClass::TestOrBench
    } else {
        PathClass::Source
    }
}

fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "repro".to_string()
}

/// Finds the line spans of `#[cfg(test)]` items by token-pattern: the
/// attribute sequence `# [ cfg ( test ) ]`, then any further attributes,
/// then the annotated item, whose extent is the balanced `{...}` block (or
/// the terminating `;` for block-less items like `use`).
fn find_test_regions(tokens: &[Spanned]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let ident =
        |i: usize, s: &str| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(x)) if x == s);
    let punct =
        |i: usize, p: u8| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p);

    let mut i = 0;
    while i + 6 < tokens.len() {
        if punct(i, b'#')
            && punct(i + 1, b'[')
            && ident(i + 2, "cfg")
            && punct(i + 3, b'(')
            && ident(i + 4, "test")
            && punct(i + 5, b')')
            && punct(i + 6, b']')
        {
            let start_line = tokens[i].line;
            // skip past this and any further attributes
            let mut j = i + 7;
            while punct(j, b'#') && punct(j + 1, b'[') {
                let mut depth = 0usize;
                while j < tokens.len() {
                    if punct(j, b'[') {
                        depth += 1;
                    } else if punct(j, b']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // find the item extent: first `{` before any top-level `;`
            let mut end = None;
            let mut k = j;
            while k < tokens.len() {
                if punct(k, b';') {
                    end = Some(tokens[k].line);
                    break;
                }
                if punct(k, b'{') {
                    let mut depth = 0usize;
                    while k < tokens.len() {
                        if punct(k, b'{') {
                            depth += 1;
                        } else if punct(k, b'}') {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(tokens[k].line);
                                break;
                            }
                        }
                        k += 1;
                    }
                    break;
                }
                k += 1;
            }
            let end_line =
                end.unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
            regions.push((start_line, end_line));
            i = k.max(j);
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_region() {
        let src = "fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(6));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.in_test_region(2));
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.in_test_region(4));
    }

    #[test]
    fn path_classes() {
        assert_eq!(classify("crates/core/src/lib.rs"), PathClass::Source);
        assert_eq!(classify("crates/core/tests/t.rs"), PathClass::TestOrBench);
        assert_eq!(
            classify("crates/bench/benches/b.rs"),
            PathClass::TestOrBench
        );
        assert_eq!(classify("examples/e.rs"), PathClass::TestOrBench);
        assert_eq!(classify("tests/t.rs"), PathClass::TestOrBench);
        assert_eq!(classify("src/lib.rs"), PathClass::Source);
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/sim/src/rng.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "repro");
        assert_eq!(crate_of("tests/t.rs"), "repro");
    }

    #[test]
    fn comment_near_window() {
        let src = "// ORDERING: doc\nx.load(o);\n\n\ny.load(o);\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.comment_near(2, 1, "ORDERING:"));
        assert!(!f.comment_near(5, 1, "ORDERING:"));
    }
}
