//! Allow-annotations: the visible escape hatch.
//!
//! A justified exception to a rule is written in the source as
//!
//! ```text
//! // LINT: <rule>-ok — <reason>
//! ```
//!
//! trailing the offending line, or standing alone on the line(s) directly
//! above it — each annotation covers exactly one line, so stacked
//! annotations never shadow each other. The reason is mandatory — an
//! annotation is a reviewed claim ("membership-only", "invariant: heap
//! non-empty while unsettled > 0"), not a mute button — and a malformed or
//! unknown-rule annotation is itself a finding (`bad-annotation`), so
//! typos cannot silently disable a rule.

use crate::lexer::Comment;

/// One parsed `LINT:` allow-annotation.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// The rule id being allowed (`no-hash-iter`, ...).
    pub rule: String,
    /// The justification text after the dash.
    pub reason: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (wrapped justifications span several).
    pub end_line: u32,
    /// The single line this annotation suppresses: its own line for a
    /// trailing comment, the line below the comment block otherwise.
    pub target_line: u32,
    /// Parse problem, if any (missing `-ok`, empty reason...). Kept on the
    /// annotation so the engine can report it with a location.
    pub malformed: Option<String>,
}

impl Annotation {
    /// Whether this annotation suppresses rule `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.malformed.is_none() && self.rule == rule && self.target_line == line
    }
}

/// Extracts annotations from a file's comments. `path` is only used in
/// malformed-annotation messages.
///
/// Only plain `//` comments whose text *starts* with `LINT:` count: the
/// lexer keeps the third slash of a `///` (and the `!` of a `//!`) as the
/// first text character, so documentation that merely *describes* the
/// annotation syntax can never act as one.
///
/// A long justification may wrap onto further plain `//` lines directly
/// below the `LINT:` line; the annotation then suppresses the line after
/// the contiguous comment block.
///
/// `code_lines` is the sorted list of lines carrying at least one token —
/// it decides whether an annotation trails code (covers its own line) or
/// stands alone (covers the line below the block).
pub fn parse(_path: &str, comments: &[Comment], code_lines: &[u32]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (i, c) in comments.iter().enumerate() {
        let trimmed = c.text.trim_start();
        let Some(body) = trimmed.strip_prefix("LINT:") else {
            continue;
        };
        let mut ann = parse_one(body.trim(), c);
        if code_lines.binary_search(&ann.line).is_ok() {
            // trailing comment: the violation is on this very line
            ann.target_line = ann.line;
        } else {
            // standalone block: absorb contiguous plain-comment
            // continuation lines, then point at the line below
            for next in &comments[i + 1..] {
                let t = next.text.trim_start();
                if next.line != ann.end_line + 1
                    || t.starts_with("LINT:")
                    || next.text.starts_with('/')
                    || next.text.starts_with('!')
                    || code_lines.binary_search(&next.line).is_ok()
                {
                    break;
                }
                ann.end_line = next.end_line;
            }
            ann.target_line = ann.end_line + 1;
        }
        out.push(ann);
    }
    out
}

fn parse_one(body: &str, c: &Comment) -> Annotation {
    let mut ann = Annotation {
        rule: String::new(),
        reason: String::new(),
        line: c.line,
        end_line: c.end_line,
        target_line: c.end_line + 1,
        malformed: None,
    };
    // rule id: leading run of [a-z0-9-]
    let id_end = body
        .find(|ch: char| !(ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-'))
        .unwrap_or(body.len());
    let id = &body[..id_end];
    let Some(rule) = id.strip_suffix("-ok") else {
        ann.malformed = Some(format!(
            "annotation `LINT: {body}` is not of the form `LINT: <rule>-ok — <reason>`"
        ));
        return ann;
    };
    ann.rule = rule.to_string();
    // reason: everything after the separator dash
    let rest = body[id_end..].trim_start();
    let reason = rest
        .strip_prefix('—')
        .or_else(|| rest.strip_prefix('-'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        ann.malformed = Some(format!(
            "annotation `LINT: {id}` has no justification — write `LINT: {id} — <reason>`"
        ));
        return ann;
    }
    ann.reason = reason.to_string();
    ann
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Comment {
        Comment {
            text: text.to_string(),
            line: 10,
            end_line: 10,
        }
    }

    #[test]
    fn standalone_covers_only_the_next_line() {
        let anns = parse(
            "f.rs",
            &[comment(" LINT: no-hash-iter-ok — membership-only dedup")],
            &[11],
        );
        assert_eq!(anns.len(), 1);
        assert!(anns[0].malformed.is_none());
        assert_eq!(anns[0].rule, "no-hash-iter");
        assert_eq!(anns[0].reason, "membership-only dedup");
        assert!(!anns[0].covers("no-hash-iter", 10));
        assert!(anns[0].covers("no-hash-iter", 11));
        assert!(!anns[0].covers("no-hash-iter", 12));
        assert!(!anns[0].covers("rng-discipline", 11));
    }

    #[test]
    fn trailing_covers_only_its_own_line() {
        let anns = parse(
            "f.rs",
            &[comment(" LINT: float-reduction-ok — fixed slice order")],
            &[10, 11],
        );
        assert!(anns[0].covers("float-reduction", 10));
        assert!(!anns[0].covers("float-reduction", 11));
    }

    #[test]
    fn ascii_dash_accepted() {
        let anns = parse(
            "f.rs",
            &[comment(" LINT: engine-no-panic-ok - invariant: x > 0")],
            &[],
        );
        assert!(anns[0].malformed.is_none());
        assert_eq!(anns[0].reason, "invariant: x > 0");
    }

    #[test]
    fn missing_reason_is_malformed() {
        let anns = parse("f.rs", &[comment(" LINT: no-hash-iter-ok")], &[]);
        assert!(anns[0].malformed.is_some());
        assert!(!anns[0].covers("no-hash-iter", 10));
        assert!(!anns[0].covers("no-hash-iter", 11));
    }

    #[test]
    fn missing_ok_suffix_is_malformed() {
        let anns = parse("f.rs", &[comment(" LINT: no-hash-iter — but why")], &[]);
        assert!(anns[0].malformed.is_some());
    }

    #[test]
    fn wrapped_reason_extends_coverage() {
        let c1 = Comment {
            text: " LINT: engine-no-panic-ok — invariant: every".into(),
            line: 10,
            end_line: 10,
        };
        let c2 = Comment {
            text: " unsettled particle keeps a clock in the heap".into(),
            line: 11,
            end_line: 11,
        };
        let anns = parse("f.rs", &[c1, c2], &[12]);
        assert_eq!(anns.len(), 1);
        assert!(!anns[0].covers("engine-no-panic", 11));
        assert!(anns[0].covers("engine-no-panic", 12));
        assert!(!anns[0].covers("engine-no-panic", 13));
    }

    #[test]
    fn continuation_stops_at_gap_and_doc_comments() {
        let c1 = Comment {
            text: " LINT: no-hash-iter-ok — membership only".into(),
            line: 10,
            end_line: 10,
        };
        // a doc comment directly below is a new item's docs, not a
        // continuation of the justification
        let c2 = Comment {
            text: "/ docs for the next item".into(),
            line: 11,
            end_line: 11,
        };
        let anns = parse("f.rs", &[c1, c2], &[12]);
        assert_eq!(anns[0].end_line, 10);
        assert!(anns[0].covers("no-hash-iter", 11));
        assert!(!anns[0].covers("no-hash-iter", 12));
    }

    #[test]
    fn unrelated_comments_ignored() {
        let anns = parse(
            "f.rs",
            &[comment(" just a note about linting in general")],
            &[],
        );
        assert!(anns.is_empty());
    }
}
