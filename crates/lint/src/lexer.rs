//! A hand-rolled, comment- and string-aware Rust lexer.
//!
//! The rules in this crate reason about *code* tokens: identifier and
//! punctuation sequences with their line numbers. A naive substring scan
//! would fire on `HashMap` inside a doc comment or a string literal, so the
//! lexer classifies every byte of the source into exactly one of: code
//! token, literal, comment, whitespace. Comments are kept (with their text
//! and line span) because the allow-annotation and `ORDERING:` machinery
//! reads them; literal *contents* are discarded on purpose — nothing a rule
//! checks should ever depend on what a string says.
//!
//! This is a lexer, not a parser: it does not build an AST and it does not
//! resolve types. Every rule is therefore a token-pattern judgement, and
//! the rule docs in `rules/` state the approximation each one makes.

/// One lexed code token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// Single punctuation byte (`:`, `(`, `!`, ...). Multi-byte operators
    /// arrive as consecutive puncts; rules match them positionally.
    Punct(u8),
    /// Any literal: string, raw string, byte string, char, or number. The
    /// payload is the literal's first byte class, enough to tell numbers
    /// (`b'0'..=b'9'`) from textual literals (`b'"'` / `b'\''`).
    Lit(u8),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// A comment with its text (delimiters stripped) and line span.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    /// 1-indexed first line of the comment.
    pub line: u32,
    /// 1-indexed last line of the comment (== `line` for `//` comments).
    pub end_line: u32,
}

/// Lexer output: the code-token stream and the comment list, both in
/// source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Spanned>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into code tokens and comments.
///
/// Handles line comments, nested block comments, string/char/byte/raw
/// literals (including `r#"..."#` with any `#` count and the raw-identifier
/// prefix `r#ident`), lifetimes vs. char literals, and numeric literals.
/// Unterminated constructs are closed at end of input rather than panicking:
/// a lexer that dies on a torn file would take the whole contract checker
/// down with it.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while !c.eof() {
        let b = c.peek(0);
        // whitespace
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        // line comment (//, ///, //!)
        if b == b'/' && c.peek(1) == b'/' {
            let line = c.line;
            c.bump();
            c.bump();
            let start = c.pos;
            while !c.eof() && c.peek(0) != b'\n' {
                c.bump();
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
                end_line: line,
            });
            continue;
        }
        // block comment, nested
        if b == b'/' && c.peek(1) == b'*' {
            let line = c.line;
            c.bump();
            c.bump();
            let start = c.pos;
            let mut depth = 1usize;
            let mut end = c.pos;
            while !c.eof() && depth > 0 {
                if c.peek(0) == b'/' && c.peek(1) == b'*' {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                    depth -= 1;
                    end = c.pos;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            if depth > 0 {
                end = c.pos; // unterminated: comment runs to EOF
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..end]).into_owned(),
                line,
                end_line: c.line,
            });
            continue;
        }
        // identifier, keyword, or a literal prefix (r"", b"", br#""#, c"")
        if is_ident_start(b) {
            let line = c.line;
            let start = c.pos;
            while !c.eof() && is_ident_continue(c.peek(0)) {
                c.bump();
            }
            let ident = &src[start..c.pos];
            // raw identifier r#name: the `#` glues to a following ident
            if ident == "r" && c.peek(0) == b'#' && is_ident_start(c.peek(1)) {
                c.bump(); // '#'
                let rs = c.pos;
                while !c.eof() && is_ident_continue(c.peek(0)) {
                    c.bump();
                }
                out.tokens.push(Spanned {
                    tok: Tok::Ident(src[rs..c.pos].to_string()),
                    line,
                });
                continue;
            }
            // literal prefixes directly followed by a quote or #"
            let prefix = matches!(ident, "r" | "b" | "br" | "c" | "cr" | "rb");
            if prefix && (c.peek(0) == b'"' || c.peek(0) == b'#' || c.peek(0) == b'\'') {
                if c.peek(0) == b'\'' {
                    // b'x' byte literal
                    lex_char(&mut c);
                    out.tokens.push(Spanned {
                        tok: Tok::Lit(b'\''),
                        line,
                    });
                } else if ident.contains('r') {
                    lex_raw_string(&mut c);
                    out.tokens.push(Spanned {
                        tok: Tok::Lit(b'"'),
                        line,
                    });
                } else {
                    c.bump(); // opening quote
                    lex_string_body(&mut c);
                    out.tokens.push(Spanned {
                        tok: Tok::Lit(b'"'),
                        line,
                    });
                }
                continue;
            }
            out.tokens.push(Spanned {
                tok: Tok::Ident(ident.to_string()),
                line,
            });
            continue;
        }
        // string literal
        if b == b'"' {
            let line = c.line;
            c.bump();
            lex_string_body(&mut c);
            out.tokens.push(Spanned {
                tok: Tok::Lit(b'"'),
                line,
            });
            continue;
        }
        // char literal vs lifetime
        if b == b'\'' {
            let line = c.line;
            // lifetime: 'ident not closed by '
            if is_ident_start(c.peek(1)) {
                // scan the ident after the quote
                let mut k = 2;
                while is_ident_continue(c.peek(k)) {
                    k += 1;
                }
                if c.peek(k) != b'\'' {
                    // lifetime — consume quote+ident, emit nothing (rules
                    // never match on lifetimes)
                    for _ in 0..k {
                        c.bump();
                    }
                    continue;
                }
            }
            lex_char(&mut c);
            out.tokens.push(Spanned {
                tok: Tok::Lit(b'\''),
                line,
            });
            continue;
        }
        // number literal: digits, `_`, alphanumerics (hex/suffixes), one
        // fractional `.` when followed by a digit (so `0..n` stays a range)
        if b.is_ascii_digit() {
            let line = c.line;
            c.bump();
            loop {
                let p = c.peek(0);
                if is_ident_continue(p) || (p == b'.' && c.peek(1).is_ascii_digit()) {
                    c.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Spanned {
                tok: Tok::Lit(b'0'),
                line,
            });
            continue;
        }
        // single punctuation byte
        let line = c.line;
        c.bump();
        out.tokens.push(Spanned {
            tok: Tok::Punct(b),
            line,
        });
    }
    out
}

/// Consumes a string body after the opening `"`, honouring `\` escapes.
fn lex_string_body(c: &mut Cursor<'_>) {
    while !c.eof() {
        match c.bump() {
            b'\\' if !c.eof() => {
                c.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw string starting at `#`* `"`, matching the `#` count.
fn lex_raw_string(c: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while c.peek(0) == b'#' {
        hashes += 1;
        c.bump();
    }
    if c.peek(0) != b'"' {
        return; // not actually a raw string; bail quietly
    }
    c.bump();
    while !c.eof() {
        if c.bump() == b'"' {
            let mut k = 0;
            while k < hashes && c.peek(0) == b'#' {
                c.bump();
                k += 1;
            }
            if k == hashes {
                return;
            }
        }
    }
}

/// Consumes a char/byte literal starting at the opening `'`.
fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // opening '
    while !c.eof() {
        match c.bump() {
            b'\\' if !c.eof() => {
                c.bump();
            }
            b'\'' => return,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let l = lex("// HashMap in a comment\nlet x = 1; /* HashSet */");
        assert_eq!(idents(&l), vec!["let", "x"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_are_opaque() {
        let l = lex(r#"let s = "Ordering::Relaxed \" still a string"; s.len()"#);
        assert_eq!(idents(&l), vec!["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#; done()"###);
        assert_eq!(idents(&l), vec!["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(idents(&l), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(idents(&l).contains(&"str"));
        // 'x' is a char literal, 'a is not
        let lits = l
            .tokens
            .iter()
            .filter(|s| matches!(s.tok, Tok::Lit(b'\'')))
            .count();
        assert_eq!(lits, 1);
    }

    #[test]
    fn char_escapes() {
        let l = lex(r"let c = '\''; let d = '\u{1F600}'; end()");
        assert_eq!(idents(&l), vec!["let", "c", "let", "d", "end"]);
    }

    #[test]
    fn line_numbers_advance_in_block_comments() {
        let l = lex("/* a\nb\nc */\nfn f() {}");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.tokens[0].line, 4);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { x += 1.5; }");
        let puncts: Vec<u8> = l
            .tokens
            .iter()
            .filter_map(|s| match s.tok {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        // the two dots of the range survive as puncts
        assert_eq!(puncts.iter().filter(|&&p| p == b'.').count(), 2);
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let l = lex(r##"let a = b"bytes"; let b2 = br#"raw"#; let c = b'x'; f()"##);
        assert_eq!(idents(&l), vec!["let", "a", "let", "b2", "let", "c", "f"]);
    }

    #[test]
    fn raw_identifier() {
        let l = lex("let r#fn = 1; g()");
        assert_eq!(idents(&l), vec!["let", "fn", "g"]);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let l = lex("let s = \"unterminated");
        assert_eq!(idents(&l), vec!["let", "s"]);
    }
}
