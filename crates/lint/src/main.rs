//! CLI for the determinism & concurrency contract checker.
//!
//! ```text
//! dispersion-lint [--root PATH] [--rules id,id,...] [--list-rules]
//! ```
//!
//! Prints one `path:line: [rule] message` diagnostic per finding and exits
//! nonzero if anything fired — wire it straight into CI. With no `--root`
//! it lints the enclosing workspace (found by walking up from the current
//! directory).

#![forbid(unsafe_code)]

use dispersion_lint::{engine, find_workspace_root, rules};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    rules: Option<Vec<String>>,
    list: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        rules: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--rules" => {
                let v = args.next().ok_or("--rules needs a comma-separated list")?;
                opts.rules = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--list-rules" => opts.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: dispersion-lint [--root PATH] [--rules id,id,...] [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for rule in rules::all() {
            println!("{:<22} {}", rule.id(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(filter) = &opts.rules {
        for id in filter {
            if !rules::known_rule(id) {
                eprintln!("unknown rule `{id}` — see --list-rules");
                return ExitCode::from(2);
            }
        }
    }

    let root = opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("could not locate a workspace root (no Cargo.toml with [workspace]); use --root");
        return ExitCode::from(2);
    };

    let findings = match engine::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dispersion-lint: io error under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings: Vec<_> = findings
        .into_iter()
        .filter(|f| {
            opts.rules
                .as_ref()
                .map(|ids| ids.iter().any(|id| id == f.rule))
                .unwrap_or(true)
        })
        .collect();

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("dispersion-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("dispersion-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
