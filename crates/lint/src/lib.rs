//! `dispersion-lint`: the workspace's determinism & concurrency contract,
//! as executable rules.
//!
//! Every headline guarantee this reproduction makes — bit-identical engine
//! outcomes across topology backends, `--threads`, `--walker-threads`, and
//! checkpoint resume — rests on source-level disciplines nothing in the
//! type system checks: derived RNG streams, no hash-order iteration,
//! justified atomic orderings, clock-free measurement paths, panic-free
//! engine hot loops, order-fixed float reductions. This crate turns those
//! disciplines into a std-only static-analysis pass: a hand-rolled
//! comment/string-aware lexer ([`lexer`]), a path/region classifier
//! ([`source`]), a pluggable rule registry ([`rules`]), and a driver
//! ([`engine`]) that runs as both a CLI binary (`dispersion-lint`, nonzero
//! exit on findings) and a workspace test.
//!
//! Justified exceptions are *visible*: a finding is only suppressed by a
//! `// LINT: <rule>-ok — <reason>` annotation on the offending line or the
//! line above, malformed or unused annotations are findings themselves,
//! and `docs/lint.md` catalogues every rule with its rationale in terms of
//! the determinism contract.

#![forbid(unsafe_code)]

pub mod annotations;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::{lint_source, lint_workspace};
pub use rules::{Finding, Rule};

use std::path::{Path, PathBuf};

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
