//! Property tests pinning the one-pass `stats::Online` estimator to the
//! two-pass `stats::Summary` reference: mean, variance and CI agree to
//! ≤ 1e-12 relative error on random streams, including merges of
//! per-thread-style partials and the runner's fixed-chunk merge order.

use dispersion_sim::runner::CHUNK;
use dispersion_sim::stats::{Online, Summary};
use proptest::prelude::*;

/// Strategy: a non-empty sample of plausible dispersion-time magnitudes
/// (positive, spanning several orders of magnitude like real cells do).
fn sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1e9, 1..300)
}

/// |a - b| relative to the larger magnitude (absolute below 1).
fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

fn push_all(xs: &[f64]) -> Online {
    let mut o = Online::new();
    for &x in xs {
        o.push(x);
    }
    o
}

proptest! {
    #[test]
    fn online_matches_two_pass(xs in sample()) {
        let o = push_all(&xs);
        let s = Summary::from_samples(&xs);
        prop_assert_eq!(o.count() as usize, s.n);
        prop_assert!(rel_err(o.mean(), s.mean) <= 1e-12, "mean {} vs {}", o.mean(), s.mean);
        prop_assert!(rel_err(o.var(), s.var) <= 1e-12, "var {} vs {}", o.var(), s.var);
        prop_assert!(rel_err(o.sem(), s.sem) <= 1e-12, "sem {} vs {}", o.sem(), s.sem);
        prop_assert!(rel_err(o.ci95_half(), 1.96 * s.sem) <= 1e-12);
        prop_assert_eq!(o.min(), s.min);
        prop_assert_eq!(o.max(), s.max);
    }

    #[test]
    fn split_merge_matches_two_pass(xs in sample(), cut_frac in 0.0f64..1.0) {
        // merge of two per-thread partials at an arbitrary split point
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let mut left = push_all(&xs[..cut]);
        let right = push_all(&xs[cut..]);
        left.merge(&right);
        let s = Summary::from_samples(&xs);
        prop_assert_eq!(left.count() as usize, s.n);
        prop_assert!(rel_err(left.mean(), s.mean) <= 1e-12);
        prop_assert!(rel_err(left.var(), s.var) <= 1e-12);
        prop_assert_eq!(left.min(), s.min);
        prop_assert_eq!(left.max(), s.max);
    }

    #[test]
    fn chunked_merge_matches_two_pass(xs in sample()) {
        // the runner's exact reduction: fixed CHUNK boundaries, chunk
        // accumulators merged in chunk order
        let mut merged = Online::new();
        for chunk in xs.chunks(CHUNK) {
            merged.merge(&push_all(chunk));
        }
        let s = Summary::from_samples(&xs);
        prop_assert!(rel_err(merged.mean(), s.mean) <= 1e-12);
        prop_assert!(rel_err(merged.var(), s.var) <= 1e-12);
        prop_assert!(rel_err(merged.sem(), s.sem) <= 1e-12);
    }

    #[test]
    fn chunked_merge_is_deterministic(xs in sample()) {
        // same chunking twice → bit-identical accumulator (the property
        // the runner's cross-thread determinism rests on)
        let reduce = |xs: &[f64]| {
            let mut m = Online::new();
            for chunk in xs.chunks(CHUNK) {
                m.merge(&push_all(chunk));
            }
            m
        };
        let a = reduce(&xs);
        let b = reduce(&xs);
        prop_assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        prop_assert_eq!(a.var().to_bits(), b.var().to_bits());
    }

    #[test]
    fn relative_ci_consistent(xs in sample()) {
        let o = push_all(&xs);
        let s = Summary::from_samples(&xs);
        if s.mean != 0.0 {
            prop_assert!(rel_err(o.relative_ci(), s.relative_ci()) <= 1e-12);
        }
    }
}
