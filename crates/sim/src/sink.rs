//! Pluggable result sinks for the streaming runner.
//!
//! The [`Runner`](crate::runner::Runner) pushes [`Event`]s — cell
//! activation, round-boundary progress, and per-cell completion
//! [`Record`]s — into one [`Sink`]. Sinks compose via [`Fanout`]; the
//! stock implementations cover the common shapes:
//!
//! * [`MemorySink`] — collect records in memory (what the binaries use to
//!   build their bespoke tables);
//! * [`NdjsonSink`] — one JSON object per record, streamed as cells
//!   finish; in *checkpoint* mode it skips records that were resumed from
//!   an earlier run, so `--resume FILE` can append to the same file it
//!   loaded;
//! * [`TextSink`] / [`CsvSink`] — generic long-format tables (one row per
//!   cell × statistic), rendered on [`Sink::finish`] in cell order.
//!
//! Records round-trip through NDJSON *exactly*: floats are serialised with
//! Rust's shortest-roundtrip formatting and parsed back bit-identically,
//! which is what makes kill + `--resume` restarts reproduce the
//! uninterrupted run. The value type and the scalar encoders live in the
//! shared [`crate::json`] module — the same codec the `dispersion-serve`
//! HTTP layer speaks.

use crate::json::{fmt_f64, fmt_str, Json};
use crate::stats::Online;
use std::io::Write;

/// Summary of one streamed statistic of a cell.
#[derive(Clone, Debug, PartialEq)]
pub struct StatSummary {
    /// Statistic name (e.g. `"time"`, `"t_half"`).
    pub name: String,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl StatSummary {
    /// Builds a summary from a one-pass accumulator.
    pub fn from_online(name: &str, o: &Online) -> Self {
        StatSummary {
            name: name.to_string(),
            mean: o.mean(),
            var: o.var(),
            min: o.min(),
            max: o.max(),
        }
    }
}

/// The completed result of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Cell id (declaration order in the spec).
    pub cell: usize,
    /// Resume fingerprint
    /// ([`ExperimentSpec::cell_key`](crate::spec::ExperimentSpec::cell_key)).
    pub key: String,
    /// Family label.
    pub family: String,
    /// Resolved vertex count.
    pub n: usize,
    /// Measure label.
    pub measure: String,
    /// Backend label (`"explicit"` / `"implicit"`).
    pub backend: String,
    /// Trials completed (may undershoot the budget on error cells).
    pub trials: u64,
    /// One summary per streamed statistic.
    pub stats: Vec<StatSummary>,
    /// Why the cell aborted, when it did.
    pub error: Option<String>,
}

impl Record {
    /// Looks a statistic up by name.
    pub fn stat(&self, name: &str) -> Option<&StatSummary> {
        self.stats.iter().find(|s| s.name == name)
    }

    /// Mean of a named statistic (`NaN` when absent).
    pub fn mean(&self, name: &str) -> f64 {
        self.stat(name).map_or(f64::NAN, |s| s.mean)
    }

    /// Standard error of the mean of a named statistic (`NaN` when
    /// absent, `0` below two trials).
    pub fn sem(&self, name: &str) -> f64 {
        match self.stat(name) {
            None => f64::NAN,
            Some(s) if self.trials == 0 => {
                debug_assert!(s.var == 0.0 || s.var.is_nan());
                0.0
            }
            Some(s) => (s.var / self.trials as f64).sqrt(),
        }
    }

    /// Half-width of the 95% CI of a named statistic.
    pub fn ci95_half(&self, name: &str) -> f64 {
        1.96 * self.sem(name)
    }

    /// Serialises to one NDJSON line (no trailing newline). Floats use
    /// shortest-roundtrip formatting, so [`Record::from_json_line`]
    /// restores them bit-identically.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"cell\":{},\"key\":{},\"family\":{},\"n\":{},\"measure\":{},\"backend\":{},\"trials\":{},\"error\":{},\"stats\":[",
            self.cell,
            fmt_str(&self.key),
            fmt_str(&self.family),
            self.n,
            fmt_str(&self.measure),
            fmt_str(&self.backend),
            self.trials,
            match &self.error {
                None => "null".to_string(),
                Some(e) => fmt_str(e),
            },
        ));
        for (i, st) in self.stats.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stat\":{},\"mean\":{},\"var\":{},\"min\":{},\"max\":{}}}",
                fmt_str(&st.name),
                fmt_f64(st.mean),
                fmt_f64(st.var),
                fmt_f64(st.min),
                fmt_f64(st.max),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses one NDJSON line produced by [`Record::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json_line(line: &str) -> Result<Record, String> {
        let v = Json::parse(line)?;
        let obj = v.as_obj().ok_or("record line is not a JSON object")?;
        let field = |k: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let num = |k: &str| -> Result<f64, String> {
            field(k)?
                .as_num()
                .ok_or_else(|| format!("{k:?} not a number"))
        };
        let string = |k: &str| -> Result<String, String> {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{k:?} not a string"))
        };
        let stats_json = field("stats")?.as_arr().ok_or("\"stats\" not an array")?;
        let mut stats = Vec::with_capacity(stats_json.len());
        for sj in stats_json {
            let so = sj.as_obj().ok_or("stat entry not an object")?;
            let sfield = |k: &str| -> Result<f64, String> {
                so.iter()
                    .find(|(key, _)| key == k)
                    .and_then(|(_, v)| v.as_num())
                    .ok_or_else(|| format!("stat field {k:?} missing or not a number"))
            };
            let name = so
                .iter()
                .find(|(key, _)| key == "stat")
                .and_then(|(_, v)| v.as_str())
                .ok_or("stat entry missing \"stat\" name")?
                .to_string();
            stats.push(StatSummary {
                name,
                mean: sfield("mean")?,
                var: sfield("var")?,
                min: sfield("min")?,
                max: sfield("max")?,
            });
        }
        let error = match field("error")? {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            _ => return Err("\"error\" must be null or a string".into()),
        };
        Ok(Record {
            cell: num("cell")? as usize,
            key: string("key")?,
            family: string("family")?,
            n: num("n")? as usize,
            measure: string("measure")?,
            backend: string("backend")?,
            trials: num("trials")? as u64,
            stats,
            error,
        })
    }
}

/// Reads all records from NDJSON text, skipping blank lines.
///
/// # Errors
///
/// Returns the first malformed line's error, tagged with its line number.
pub fn parse_ndjson(text: &str) -> Result<Vec<Record>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| Record::from_json_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// A malformed tail found (and skipped) by [`parse_ndjson_lossy`].
#[derive(Clone, Debug, PartialEq)]
pub struct TornTail {
    /// 1-based line number of the first malformed line.
    pub line: usize,
    /// Byte offset of that line's start — the prefix `text[..offset]` is
    /// the well-formed part a repair should truncate the file to.
    pub offset: usize,
    /// Why the line failed to parse.
    pub error: String,
}

/// Crash-tolerant checkpoint parse: reads records up to the first
/// malformed line and reports that line as a [`TornTail`] instead of
/// failing — a process killed mid-`write` leaves exactly this shape
/// (complete lines, then one torn line at the end). Everything after the
/// torn line is ignored; callers that find interior garbage followed by
/// more data are looking at a corrupt (not torn) file and can tell by
/// checking `offset` against the text length.
pub fn parse_ndjson_lossy(text: &str) -> (Vec<Record>, Option<TornTail>) {
    let mut records = Vec::new();
    let mut offset = 0;
    for (i, line) in text.lines().enumerate() {
        if !line.trim().is_empty() {
            match Record::from_json_line(line) {
                Ok(r) => records.push(r),
                Err(e) => {
                    return (
                        records,
                        Some(TornTail {
                            line: i + 1,
                            offset,
                            error: e,
                        }),
                    )
                }
            }
        }
        // `lines()` strips the terminator; step past it when present
        offset += line.len();
        if text[offset..].starts_with("\r\n") {
            offset += 2;
        } else if text[offset..].starts_with('\n') {
            offset += 1;
        }
    }
    (records, None)
}

/// A streamed runner event.
#[derive(Clone, Debug)]
pub enum Event<'a> {
    /// A cell was activated (its instance resolved, trials starting).
    Started {
        /// Cell id.
        cell: usize,
        /// The cell's fingerprint key.
        key: &'a str,
    },
    /// A work chunk of a cell landed (chunk-grained progress: what a
    /// serving layer aggregates into live trial counts and steps/s).
    /// Counts are *deltas* for the one chunk, not cumulative totals.
    Chunk {
        /// Cell id.
        cell: usize,
        /// Trials the chunk completed.
        trials: u64,
        /// Walk steps those trials performed.
        steps: u64,
    },
    /// An adaptive cell finished a round without meeting its budget yet.
    Progress {
        /// Cell id.
        cell: usize,
        /// Trials completed so far.
        trials_done: u64,
        /// Current relative CI half-width of the primary statistic.
        relative_ci: f64,
    },
    /// A cell completed (successfully or with an error record).
    Done {
        /// The completed record.
        record: &'a Record,
        /// Whether it was restored from a checkpoint rather than run.
        resumed: bool,
    },
}

/// Receives streamed events from the runner. Implementations must be
/// `Send`: the runner's worker threads emit events under an internal lock.
pub trait Sink: Send {
    /// Handles one event.
    fn on_event(&mut self, event: &Event);

    /// Called once after every cell has completed.
    fn finish(&mut self) {}
}

/// Collects records (and counts the other events) in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Completed records, sorted by cell id at [`Sink::finish`].
    pub records: Vec<Record>,
    /// Number of `Started` events seen.
    pub started: usize,
    /// Number of `Chunk` events seen.
    pub chunks: usize,
    /// Trials summed over `Chunk` events.
    pub trials: u64,
    /// Walk steps summed over `Chunk` events.
    pub steps: u64,
    /// Number of `Progress` events seen.
    pub progress: usize,
    /// Number of resumed records among `records`.
    pub resumed: usize,
}

impl Sink for MemorySink {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Started { .. } => self.started += 1,
            Event::Chunk { trials, steps, .. } => {
                self.chunks += 1;
                self.trials += trials;
                self.steps += steps;
            }
            Event::Progress { .. } => self.progress += 1,
            Event::Done { record, resumed } => {
                self.records.push((*record).clone());
                if *resumed {
                    self.resumed += 1;
                }
            }
        }
    }

    fn finish(&mut self) {
        self.records.sort_by_key(|r| r.cell);
    }
}

/// Streams records as NDJSON lines, flushing after each one (so a killed
/// run leaves a usable checkpoint).
pub struct NdjsonSink<W: Write + Send> {
    w: W,
    include_resumed: bool,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Writes every completed record (output mode).
    pub fn new(w: W) -> Self {
        NdjsonSink {
            w,
            include_resumed: true,
        }
    }

    /// Writes only freshly computed records (checkpoint mode: resumed
    /// records are already in the file being appended to).
    pub fn checkpoint(w: W) -> Self {
        NdjsonSink {
            w,
            include_resumed: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> Sink for NdjsonSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, resumed } = event {
            if *resumed && !self.include_resumed {
                return;
            }
            // checkpoint durability beats raw throughput here: records are
            // rare (one per cell), so write + flush each line
            let _ = writeln!(self.w, "{}", record.to_json_line());
            let _ = self.w.flush();
        }
    }

    fn finish(&mut self) {
        let _ = self.w.flush();
    }
}

/// Builds the generic long-format table (one row per cell × statistic).
fn long_table(records: &[Record]) -> crate::table::TextTable {
    let mut t = crate::table::TextTable::new([
        "cell", "family", "n", "measure", "backend", "trials", "stat", "mean", "sem", "ci95",
        "min", "max", "error",
    ]);
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by_key(|r| r.cell);
    for r in sorted {
        let err = r.error.clone().unwrap_or_default();
        if r.stats.is_empty() {
            t.push_row([
                r.cell.to_string(),
                r.family.clone(),
                r.n.to_string(),
                r.measure.clone(),
                r.backend.clone(),
                r.trials.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                err.clone(),
            ]);
            continue;
        }
        for s in &r.stats {
            t.push_row([
                r.cell.to_string(),
                r.family.clone(),
                r.n.to_string(),
                r.measure.clone(),
                r.backend.clone(),
                r.trials.to_string(),
                s.name.clone(),
                crate::table::fmt_f(s.mean),
                crate::table::fmt_f(r.sem(&s.name)),
                crate::table::fmt_f(r.ci95_half(&s.name)),
                crate::table::fmt_f(s.min),
                crate::table::fmt_f(s.max),
                err.clone(),
            ]);
        }
    }
    t
}

/// Renders the generic long-format table as aligned text on `finish`.
pub struct TextSink<W: Write + Send> {
    w: W,
    records: Vec<Record>,
}

impl<W: Write + Send> TextSink<W> {
    /// A text sink writing to `w`.
    pub fn new(w: W) -> Self {
        TextSink {
            w,
            records: Vec::new(),
        }
    }
}

impl<W: Write + Send> Sink for TextSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, .. } = event {
            self.records.push((*record).clone());
        }
    }

    fn finish(&mut self) {
        let _ = write!(self.w, "{}", long_table(&self.records).render());
        let _ = self.w.flush();
    }
}

/// Renders the generic long-format table as CSV on `finish`.
pub struct CsvSink<W: Write + Send> {
    w: W,
    records: Vec<Record>,
}

impl<W: Write + Send> CsvSink<W> {
    /// A CSV sink writing to `w`.
    pub fn new(w: W) -> Self {
        CsvSink {
            w,
            records: Vec::new(),
        }
    }
}

impl<W: Write + Send> Sink for CsvSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, .. } = event {
            self.records.push((*record).clone());
        }
    }

    fn finish(&mut self) {
        let _ = write!(self.w, "{}", long_table(&self.records).to_csv());
        let _ = self.w.flush();
    }
}

/// Broadcasts every event to several sinks.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    /// An empty fanout (a valid no-op sink).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`Fanout::push`].
    #[must_use]
    pub fn with(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Sink for Fanout {
    fn on_event(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.on_event(event);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record {
            cell: 3,
            key: "cycle:n32:seq:explicit:t100:m2a:g0".into(),
            family: "cycle".into(),
            n: 32,
            measure: "seq".into(),
            backend: "explicit".into(),
            trials: 100,
            stats: vec![
                StatSummary {
                    name: "time".into(),
                    mean: 462.512_345_678_901,
                    var: 0.1 + 0.2, // deliberately non-representable
                    min: 101.0,
                    max: 903.0,
                },
                StatSummary {
                    name: "t_half".into(),
                    mean: 30.5,
                    var: 2.25,
                    min: 21.0,
                    max: 44.0,
                },
            ],
            error: None,
        }
    }

    #[test]
    fn record_json_roundtrip_is_exact() {
        let r = sample_record();
        let line = r.to_json_line();
        let back = Record::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        // and a second roundtrip is stable
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn record_json_roundtrip_with_error_and_weird_strings() {
        let mut r = sample_record();
        r.error = Some("parallel run exceeded step cap 4 with 3 \"particles\"\nunsettled".into());
        r.key = "weird\\key\twith\u{1F980}unicode".into();
        r.stats.clear();
        r.trials = 0;
        let back = Record::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let mut r = sample_record();
        r.stats[0].min = f64::INFINITY;
        r.stats[0].max = f64::NEG_INFINITY;
        let back = Record::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.stats[0].min, f64::INFINITY);
        assert_eq!(back.stats[0].max, f64::NEG_INFINITY);
    }

    #[test]
    fn parse_ndjson_reports_line_numbers() {
        let r = sample_record();
        let good = format!("{}\n\n{}\n", r.to_json_line(), r.to_json_line());
        assert_eq!(parse_ndjson(&good).unwrap().len(), 2);
        let bad = format!("{}\nnot json\n", r.to_json_line());
        let err = parse_ndjson(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn record_sem_and_ci() {
        let r = sample_record();
        let sem = (r.stats[1].var / 100.0f64).sqrt();
        assert!((r.sem("t_half") - sem).abs() < 1e-15);
        assert!((r.ci95_half("t_half") - 1.96 * sem).abs() < 1e-15);
        assert!(r.sem("nope").is_nan());
        assert!(r.mean("nope").is_nan());
    }

    #[test]
    fn ndjson_sink_checkpoint_mode_skips_resumed() {
        let r = sample_record();
        let mut out = NdjsonSink::checkpoint(Vec::new());
        out.on_event(&Event::Done {
            record: &r,
            resumed: true,
        });
        out.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        out.finish();
        let text = String::from_utf8(out.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1);
        let mut all = NdjsonSink::new(Vec::new());
        all.on_event(&Event::Done {
            record: &r,
            resumed: true,
        });
        all.finish();
        assert_eq!(
            String::from_utf8(all.into_inner()).unwrap().lines().count(),
            1
        );
    }

    #[test]
    fn memory_sink_sorts_and_counts() {
        let mut r1 = sample_record();
        r1.cell = 7;
        let r2 = sample_record();
        let mut m = MemorySink::default();
        m.on_event(&Event::Started { cell: 3, key: "k" });
        m.on_event(&Event::Progress {
            cell: 3,
            trials_done: 30,
            relative_ci: 0.1,
        });
        m.on_event(&Event::Done {
            record: &r1,
            resumed: true,
        });
        m.on_event(&Event::Done {
            record: &r2,
            resumed: false,
        });
        m.finish();
        assert_eq!(m.started, 1);
        assert_eq!(m.progress, 1);
        assert_eq!(m.resumed, 1);
        assert_eq!(m.records[0].cell, 3);
        assert_eq!(m.records[1].cell, 7);
    }

    #[test]
    fn text_and_csv_sinks_render_long_format() {
        let r = sample_record();
        let mut t = TextSink::new(Vec::new());
        t.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        t.finish();
        let text = String::from_utf8(t.w).unwrap();
        assert!(text.contains("t_half"), "{text}");
        let mut c = CsvSink::new(Vec::new());
        c.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        c.finish();
        let csv = String::from_utf8(c.w).unwrap();
        assert!(csv.starts_with("cell,family,n,"), "{csv}");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn fanout_broadcasts() {
        let r = sample_record();
        let mut f = Fanout::new()
            .with(Box::new(MemorySink::default()))
            .with(Box::new(MemorySink::default()));
        f.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        f.finish();
        // both swallowed the record without panicking; Fanout is opaque, so
        // just assert the call path ran
        f.push(Box::new(MemorySink::default()));
    }

    #[test]
    fn lossy_parse_stops_at_torn_tail() {
        let r = sample_record();
        let line = r.to_json_line();
        // a kill mid-write tears the final line at an arbitrary byte
        let torn = format!("{line}\n{line}\n{}", &line[..line.len() / 2]);
        let (records, tail) = parse_ndjson_lossy(&torn);
        assert_eq!(records.len(), 2);
        let tail = tail.expect("torn tail detected");
        assert_eq!(tail.line, 3);
        assert_eq!(&torn[..tail.offset], &format!("{line}\n{line}\n"));
        // a clean file has no tail
        let (records, tail) = parse_ndjson_lossy(&format!("{line}\n\n{line}\n"));
        assert_eq!(records.len(), 2);
        assert!(tail.is_none());
        // empty input parses to nothing
        assert_eq!(parse_ndjson_lossy(""), (Vec::new(), None));
    }
}
