//! Pluggable result sinks for the streaming runner.
//!
//! The [`Runner`](crate::runner::Runner) pushes [`Event`]s — cell
//! activation, round-boundary progress, and per-cell completion
//! [`Record`]s — into one [`Sink`]. Sinks compose via [`Fanout`]; the
//! stock implementations cover the common shapes:
//!
//! * [`MemorySink`] — collect records in memory (what the binaries use to
//!   build their bespoke tables);
//! * [`NdjsonSink`] — one JSON object per record, streamed as cells
//!   finish; in *checkpoint* mode it skips records that were resumed from
//!   an earlier run, so `--resume FILE` can append to the same file it
//!   loaded;
//! * [`TextSink`] / [`CsvSink`] — generic long-format tables (one row per
//!   cell × statistic), rendered on [`Sink::finish`] in cell order.
//!
//! Records round-trip through NDJSON *exactly*: floats are serialised with
//! Rust's shortest-roundtrip formatting and parsed back bit-identically,
//! which is what makes kill + `--resume` restarts reproduce the
//! uninterrupted run.

use crate::stats::Online;
use std::io::Write;

/// Summary of one streamed statistic of a cell.
#[derive(Clone, Debug, PartialEq)]
pub struct StatSummary {
    /// Statistic name (e.g. `"time"`, `"t_half"`).
    pub name: String,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl StatSummary {
    /// Builds a summary from a one-pass accumulator.
    pub fn from_online(name: &str, o: &Online) -> Self {
        StatSummary {
            name: name.to_string(),
            mean: o.mean(),
            var: o.var(),
            min: o.min(),
            max: o.max(),
        }
    }
}

/// The completed result of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Cell id (declaration order in the spec).
    pub cell: usize,
    /// Resume fingerprint
    /// ([`ExperimentSpec::cell_key`](crate::spec::ExperimentSpec::cell_key)).
    pub key: String,
    /// Family label.
    pub family: String,
    /// Resolved vertex count.
    pub n: usize,
    /// Measure label.
    pub measure: String,
    /// Backend label (`"explicit"` / `"implicit"`).
    pub backend: String,
    /// Trials completed (may undershoot the budget on error cells).
    pub trials: u64,
    /// One summary per streamed statistic.
    pub stats: Vec<StatSummary>,
    /// Why the cell aborted, when it did.
    pub error: Option<String>,
}

impl Record {
    /// Looks a statistic up by name.
    pub fn stat(&self, name: &str) -> Option<&StatSummary> {
        self.stats.iter().find(|s| s.name == name)
    }

    /// Mean of a named statistic (`NaN` when absent).
    pub fn mean(&self, name: &str) -> f64 {
        self.stat(name).map_or(f64::NAN, |s| s.mean)
    }

    /// Standard error of the mean of a named statistic (`NaN` when
    /// absent, `0` below two trials).
    pub fn sem(&self, name: &str) -> f64 {
        match self.stat(name) {
            None => f64::NAN,
            Some(s) if self.trials == 0 => {
                debug_assert!(s.var == 0.0 || s.var.is_nan());
                0.0
            }
            Some(s) => (s.var / self.trials as f64).sqrt(),
        }
    }

    /// Half-width of the 95% CI of a named statistic.
    pub fn ci95_half(&self, name: &str) -> f64 {
        1.96 * self.sem(name)
    }

    /// Serialises to one NDJSON line (no trailing newline). Floats use
    /// shortest-roundtrip formatting, so [`Record::from_json_line`]
    /// restores them bit-identically.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"cell\":{},\"key\":{},\"family\":{},\"n\":{},\"measure\":{},\"backend\":{},\"trials\":{},\"error\":{},\"stats\":[",
            self.cell,
            json_string(&self.key),
            json_string(&self.family),
            self.n,
            json_string(&self.measure),
            json_string(&self.backend),
            self.trials,
            match &self.error {
                None => "null".to_string(),
                Some(e) => json_string(e),
            },
        ));
        for (i, st) in self.stats.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stat\":{},\"mean\":{},\"var\":{},\"min\":{},\"max\":{}}}",
                json_string(&st.name),
                json_f64(st.mean),
                json_f64(st.var),
                json_f64(st.min),
                json_f64(st.max),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses one NDJSON line produced by [`Record::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json_line(line: &str) -> Result<Record, String> {
        let v = Json::parse(line)?;
        let obj = v.as_obj().ok_or("record line is not a JSON object")?;
        let field = |k: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let num = |k: &str| -> Result<f64, String> {
            field(k)?
                .as_num()
                .ok_or_else(|| format!("{k:?} not a number"))
        };
        let string = |k: &str| -> Result<String, String> {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{k:?} not a string"))
        };
        let stats_json = field("stats")?.as_arr().ok_or("\"stats\" not an array")?;
        let mut stats = Vec::with_capacity(stats_json.len());
        for sj in stats_json {
            let so = sj.as_obj().ok_or("stat entry not an object")?;
            let sfield = |k: &str| -> Result<f64, String> {
                so.iter()
                    .find(|(key, _)| key == k)
                    .and_then(|(_, v)| v.as_num())
                    .ok_or_else(|| format!("stat field {k:?} missing or not a number"))
            };
            let name = so
                .iter()
                .find(|(key, _)| key == "stat")
                .and_then(|(_, v)| v.as_str())
                .ok_or("stat entry missing \"stat\" name")?
                .to_string();
            stats.push(StatSummary {
                name,
                mean: sfield("mean")?,
                var: sfield("var")?,
                min: sfield("min")?,
                max: sfield("max")?,
            });
        }
        let error = match field("error")? {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            _ => return Err("\"error\" must be null or a string".into()),
        };
        Ok(Record {
            cell: num("cell")? as usize,
            key: string("key")?,
            family: string("family")?,
            n: num("n")? as usize,
            measure: string("measure")?,
            backend: string("backend")?,
            trials: num("trials")? as u64,
            stats,
            error,
        })
    }
}

/// Serialises an f64 as a JSON-compatible token with exact roundtrip;
/// non-finite values (possible in min/max of empty error cells) are
/// encoded as strings the parser maps back.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "\"nan\"".to_string()
    } else if x > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// JSON-escapes a string, including the surrounding quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for parsing checkpoint lines — just what
/// [`Record::from_json_line`] needs, no external dependency.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as f64; also decodes `"nan"`/`"inf"` markers via
    /// [`Json::as_num`] on strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            // non-finite floats travel as marker strings
            Json::Str(s) => match s.as_str() {
                "nan" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                obj.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'n') => expect_lit(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {tok:?} at byte {start}"))
        }
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = parse_hex4(b, pos)?;
                        if (0xD800..0xDC00).contains(&hex) {
                            // high surrogate: a \uXXXX low surrogate must follow
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let c = 0x10000 + ((hex - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            out.push(char::from_u32(hex).ok_or("bad \\u escape")?);
                        }
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    let hex = b
        .get(*pos..end)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or("truncated \\u escape")?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
    *pos = end;
    Ok(v)
}

/// Reads all records from NDJSON text, skipping blank lines.
///
/// # Errors
///
/// Returns the first malformed line's error, tagged with its line number.
pub fn parse_ndjson(text: &str) -> Result<Vec<Record>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| Record::from_json_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// A streamed runner event.
#[derive(Clone, Debug)]
pub enum Event<'a> {
    /// A cell was activated (its instance resolved, trials starting).
    Started {
        /// Cell id.
        cell: usize,
        /// The cell's fingerprint key.
        key: &'a str,
    },
    /// An adaptive cell finished a round without meeting its budget yet.
    Progress {
        /// Cell id.
        cell: usize,
        /// Trials completed so far.
        trials_done: u64,
        /// Current relative CI half-width of the primary statistic.
        relative_ci: f64,
    },
    /// A cell completed (successfully or with an error record).
    Done {
        /// The completed record.
        record: &'a Record,
        /// Whether it was restored from a checkpoint rather than run.
        resumed: bool,
    },
}

/// Receives streamed events from the runner. Implementations must be
/// `Send`: the runner's worker threads emit events under an internal lock.
pub trait Sink: Send {
    /// Handles one event.
    fn on_event(&mut self, event: &Event);

    /// Called once after every cell has completed.
    fn finish(&mut self) {}
}

/// Collects records (and counts the other events) in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Completed records, sorted by cell id at [`Sink::finish`].
    pub records: Vec<Record>,
    /// Number of `Started` events seen.
    pub started: usize,
    /// Number of `Progress` events seen.
    pub progress: usize,
    /// Number of resumed records among `records`.
    pub resumed: usize,
}

impl Sink for MemorySink {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Started { .. } => self.started += 1,
            Event::Progress { .. } => self.progress += 1,
            Event::Done { record, resumed } => {
                self.records.push((*record).clone());
                if *resumed {
                    self.resumed += 1;
                }
            }
        }
    }

    fn finish(&mut self) {
        self.records.sort_by_key(|r| r.cell);
    }
}

/// Streams records as NDJSON lines, flushing after each one (so a killed
/// run leaves a usable checkpoint).
pub struct NdjsonSink<W: Write + Send> {
    w: W,
    include_resumed: bool,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Writes every completed record (output mode).
    pub fn new(w: W) -> Self {
        NdjsonSink {
            w,
            include_resumed: true,
        }
    }

    /// Writes only freshly computed records (checkpoint mode: resumed
    /// records are already in the file being appended to).
    pub fn checkpoint(w: W) -> Self {
        NdjsonSink {
            w,
            include_resumed: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> Sink for NdjsonSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, resumed } = event {
            if *resumed && !self.include_resumed {
                return;
            }
            // checkpoint durability beats raw throughput here: records are
            // rare (one per cell), so write + flush each line
            let _ = writeln!(self.w, "{}", record.to_json_line());
            let _ = self.w.flush();
        }
    }

    fn finish(&mut self) {
        let _ = self.w.flush();
    }
}

/// Builds the generic long-format table (one row per cell × statistic).
fn long_table(records: &[Record]) -> crate::table::TextTable {
    let mut t = crate::table::TextTable::new([
        "cell", "family", "n", "measure", "backend", "trials", "stat", "mean", "sem", "ci95",
        "min", "max", "error",
    ]);
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by_key(|r| r.cell);
    for r in sorted {
        let err = r.error.clone().unwrap_or_default();
        if r.stats.is_empty() {
            t.push_row([
                r.cell.to_string(),
                r.family.clone(),
                r.n.to_string(),
                r.measure.clone(),
                r.backend.clone(),
                r.trials.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                err.clone(),
            ]);
            continue;
        }
        for s in &r.stats {
            t.push_row([
                r.cell.to_string(),
                r.family.clone(),
                r.n.to_string(),
                r.measure.clone(),
                r.backend.clone(),
                r.trials.to_string(),
                s.name.clone(),
                crate::table::fmt_f(s.mean),
                crate::table::fmt_f(r.sem(&s.name)),
                crate::table::fmt_f(r.ci95_half(&s.name)),
                crate::table::fmt_f(s.min),
                crate::table::fmt_f(s.max),
                err.clone(),
            ]);
        }
    }
    t
}

/// Renders the generic long-format table as aligned text on `finish`.
pub struct TextSink<W: Write + Send> {
    w: W,
    records: Vec<Record>,
}

impl<W: Write + Send> TextSink<W> {
    /// A text sink writing to `w`.
    pub fn new(w: W) -> Self {
        TextSink {
            w,
            records: Vec::new(),
        }
    }
}

impl<W: Write + Send> Sink for TextSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, .. } = event {
            self.records.push((*record).clone());
        }
    }

    fn finish(&mut self) {
        let _ = write!(self.w, "{}", long_table(&self.records).render());
        let _ = self.w.flush();
    }
}

/// Renders the generic long-format table as CSV on `finish`.
pub struct CsvSink<W: Write + Send> {
    w: W,
    records: Vec<Record>,
}

impl<W: Write + Send> CsvSink<W> {
    /// A CSV sink writing to `w`.
    pub fn new(w: W) -> Self {
        CsvSink {
            w,
            records: Vec::new(),
        }
    }
}

impl<W: Write + Send> Sink for CsvSink<W> {
    fn on_event(&mut self, event: &Event) {
        if let Event::Done { record, .. } = event {
            self.records.push((*record).clone());
        }
    }

    fn finish(&mut self) {
        let _ = write!(self.w, "{}", long_table(&self.records).to_csv());
        let _ = self.w.flush();
    }
}

/// Broadcasts every event to several sinks.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    /// An empty fanout (a valid no-op sink).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`Fanout::push`].
    #[must_use]
    pub fn with(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Sink for Fanout {
    fn on_event(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.on_event(event);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record {
            cell: 3,
            key: "cycle:n32:seq:explicit:t100:m2a:g0".into(),
            family: "cycle".into(),
            n: 32,
            measure: "seq".into(),
            backend: "explicit".into(),
            trials: 100,
            stats: vec![
                StatSummary {
                    name: "time".into(),
                    mean: 462.512_345_678_901,
                    var: 0.1 + 0.2, // deliberately non-representable
                    min: 101.0,
                    max: 903.0,
                },
                StatSummary {
                    name: "t_half".into(),
                    mean: 30.5,
                    var: 2.25,
                    min: 21.0,
                    max: 44.0,
                },
            ],
            error: None,
        }
    }

    #[test]
    fn record_json_roundtrip_is_exact() {
        let r = sample_record();
        let line = r.to_json_line();
        let back = Record::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        // and a second roundtrip is stable
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn record_json_roundtrip_with_error_and_weird_strings() {
        let mut r = sample_record();
        r.error = Some("parallel run exceeded step cap 4 with 3 \"particles\"\nunsettled".into());
        r.key = "weird\\key\twith\u{1F980}unicode".into();
        r.stats.clear();
        r.trials = 0;
        let back = Record::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let mut r = sample_record();
        r.stats[0].min = f64::INFINITY;
        r.stats[0].max = f64::NEG_INFINITY;
        let back = Record::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.stats[0].min, f64::INFINITY);
        assert_eq!(back.stats[0].max, f64::NEG_INFINITY);
    }

    #[test]
    fn parse_ndjson_reports_line_numbers() {
        let r = sample_record();
        let good = format!("{}\n\n{}\n", r.to_json_line(), r.to_json_line());
        assert_eq!(parse_ndjson(&good).unwrap().len(), 2);
        let bad = format!("{}\nnot json\n", r.to_json_line());
        let err = parse_ndjson(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn record_sem_and_ci() {
        let r = sample_record();
        let sem = (r.stats[1].var / 100.0f64).sqrt();
        assert!((r.sem("t_half") - sem).abs() < 1e-15);
        assert!((r.ci95_half("t_half") - 1.96 * sem).abs() < 1e-15);
        assert!(r.sem("nope").is_nan());
        assert!(r.mean("nope").is_nan());
    }

    #[test]
    fn ndjson_sink_checkpoint_mode_skips_resumed() {
        let r = sample_record();
        let mut out = NdjsonSink::checkpoint(Vec::new());
        out.on_event(&Event::Done {
            record: &r,
            resumed: true,
        });
        out.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        out.finish();
        let text = String::from_utf8(out.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1);
        let mut all = NdjsonSink::new(Vec::new());
        all.on_event(&Event::Done {
            record: &r,
            resumed: true,
        });
        all.finish();
        assert_eq!(
            String::from_utf8(all.into_inner()).unwrap().lines().count(),
            1
        );
    }

    #[test]
    fn memory_sink_sorts_and_counts() {
        let mut r1 = sample_record();
        r1.cell = 7;
        let r2 = sample_record();
        let mut m = MemorySink::default();
        m.on_event(&Event::Started { cell: 3, key: "k" });
        m.on_event(&Event::Progress {
            cell: 3,
            trials_done: 30,
            relative_ci: 0.1,
        });
        m.on_event(&Event::Done {
            record: &r1,
            resumed: true,
        });
        m.on_event(&Event::Done {
            record: &r2,
            resumed: false,
        });
        m.finish();
        assert_eq!(m.started, 1);
        assert_eq!(m.progress, 1);
        assert_eq!(m.resumed, 1);
        assert_eq!(m.records[0].cell, 3);
        assert_eq!(m.records[1].cell, 7);
    }

    #[test]
    fn text_and_csv_sinks_render_long_format() {
        let r = sample_record();
        let mut t = TextSink::new(Vec::new());
        t.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        t.finish();
        let text = String::from_utf8(t.w).unwrap();
        assert!(text.contains("t_half"), "{text}");
        let mut c = CsvSink::new(Vec::new());
        c.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        c.finish();
        let csv = String::from_utf8(c.w).unwrap();
        assert!(csv.starts_with("cell,family,n,"), "{csv}");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn fanout_broadcasts() {
        let r = sample_record();
        let mut f = Fanout::new()
            .with(Box::new(MemorySink::default()))
            .with(Box::new(MemorySink::default()));
        f.on_event(&Event::Done {
            record: &r,
            resumed: false,
        });
        f.finish();
        // both swallowed the record without panicking; Fanout is opaque, so
        // just assert the call path ran
        f.push(Box::new(MemorySink::default()));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 junk").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse(" {\"a\": [1, \"\\u00e9\\ud83e\\udd80\"]} ").unwrap(),
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("é🦀".into())])
            )])
        );
    }
}
