//! Summary statistics for Monte-Carlo samples.
//!
//! Two estimators live here:
//!
//! * [`Summary`] — the classical two-pass batch summary over a materialised
//!   sample slice (kept for call sites that already hold the samples, and as
//!   the reference implementation the one-pass estimator is property-tested
//!   against);
//! * [`Online`] — a one-pass Welford accumulator with Chan-style merging,
//!   used by the streaming [`runner`](crate::runner) so no sample vector is
//!   ever materialised, no matter how many trials a cell runs.

/// One-pass running moments (Welford's algorithm) with min/max tracking and
/// Chan's parallel merge rule.
///
/// Numerically this matches the two-pass [`Summary`] to ≈1e-12 relative
/// error (see `tests/online_stats.rs`), but note that *merging is not
/// floating-point associative*: callers that need bit-identical results
/// across thread counts must merge partials in a deterministic order, as
/// the runner does (fixed chunk boundaries, merged in chunk order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Online {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Online {
    fn default() -> Self {
        Online::new()
    }
}

impl Online {
    /// An empty accumulator.
    pub fn new() -> Self {
        Online {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator in (Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &Online) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Running mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0` below two observations).
    pub fn var(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.var().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% normal-approximation CI for the mean.
    pub fn ci95_half(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Relative half-width of the 95% CI (`1.96·sem / |mean|`); `inf` for a
    /// zero mean or an empty accumulator.
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 || self.count == 0 {
            f64::INFINITY
        } else {
            self.ci95_half() / self.mean.abs()
        }
    }
}

/// Summary of a sample: moments, a normal-approximation confidence interval,
/// and order statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes a summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len();
        // LINT: float-reduction-ok — two-pass reference implementation that
        // Online is validated against; order fixed by the sample slice
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            // LINT: float-reduction-ok — same two-pass reference as the mean
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let sem = std / (n as f64).sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = quantile_sorted(&sorted, 0.5);
        Summary {
            n,
            mean,
            var,
            std,
            sem,
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// 95% normal-approximation confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.sem;
        (self.mean - half, self.mean + half)
    }

    /// Relative half-width of the 95% CI (`1.96·sem / mean`); `inf` for a
    /// zero mean.
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            1.96 * self.sem / self.mean.abs()
        }
    }
}

/// `p`-quantile of a sample (linear interpolation).
///
/// # Panics
///
/// Panics on an empty sample or `p ∉ [0, 1]`.
pub fn quantile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quantile_sorted(&sorted, p)
}

fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::from_samples(&[3.0; 10]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.ci95(), (3.0, 3.0));
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.var - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // unsorted input handled
        let ys = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&ys, 0.5), 3.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.sem, 0.0);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn ci_narrows_with_n() {
        let small = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let big_data: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::from_samples(&big_data);
        assert!(big.sem < small.sem);
        assert!(big.relative_ci() < small.relative_ci());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn online_matches_two_pass_on_known_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut o = Online::new();
        for &x in &xs {
            o.push(x);
        }
        let s = Summary::from_samples(&xs);
        assert_eq!(o.count(), 4);
        assert_eq!(o.mean(), s.mean);
        assert!((o.var() - s.var).abs() < 1e-14);
        assert_eq!(o.min(), s.min);
        assert_eq!(o.max(), s.max);
        assert!((o.sem() - s.sem).abs() < 1e-14);
    }

    #[test]
    fn online_merge_agrees_with_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 13) as f64 - 6.0).collect();
        let mut whole = Online::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(33);
        let mut left = Online::new();
        let mut right = Online::new();
        a.iter().for_each(|&x| left.push(x));
        b.iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.var() - whole.var()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn online_merge_empty_identity() {
        let mut o = Online::new();
        o.push(5.0);
        o.push(7.0);
        let snapshot = o;
        o.merge(&Online::new());
        assert_eq!(o, snapshot);
        let mut e = Online::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn online_empty_and_single() {
        let o = Online::new();
        assert!(o.is_empty());
        assert_eq!(o.sem(), 0.0);
        assert_eq!(o.relative_ci(), f64::INFINITY);
        let mut one = Online::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.var(), 0.0);
        assert_eq!(one.ci95_half(), 0.0);
        assert_eq!(one.relative_ci(), 0.0);
    }
}
