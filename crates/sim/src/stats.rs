//! Summary statistics for Monte-Carlo samples.

/// Summary of a sample: moments, a normal-approximation confidence interval,
/// and order statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes a summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let sem = std / (n as f64).sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = quantile_sorted(&sorted, 0.5);
        Summary {
            n,
            mean,
            var,
            std,
            sem,
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// 95% normal-approximation confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.sem;
        (self.mean - half, self.mean + half)
    }

    /// Relative half-width of the 95% CI (`1.96·sem / mean`); `inf` for a
    /// zero mean.
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            1.96 * self.sem / self.mean.abs()
        }
    }
}

/// `p`-quantile of a sample (linear interpolation).
///
/// # Panics
///
/// Panics on an empty sample or `p ∉ [0, 1]`.
pub fn quantile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quantile_sorted(&sorted, p)
}

fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::from_samples(&[3.0; 10]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.ci95(), (3.0, 3.0));
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.var - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // unsorted input handled
        let ys = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&ys, 0.5), 3.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.sem, 0.0);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn ci_narrows_with_n() {
        let small = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let big_data: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::from_samples(&big_data);
        assert!(big.sem < small.sem);
        assert!(big.relative_ci() < small.relative_ci());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::from_samples(&[]);
    }
}
