//! Histograms and ASCII rendering — used by the counterexample experiments
//! to make the Prop. 2.1 bimodality visible in terminal output.

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<usize>,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram spanning a sample's range.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty());
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo {
            hi * (1.0 + 1e-12) + 1e-12
        } else {
            lo + 1.0
        };
        let mut h = Histogram::new(lo, hi, bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let k = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * k as f64) as usize;
            self.bins[idx.min(k - 1)] += 1;
        }
    }

    /// Total observations including out-of-range ones.
    pub fn count(&self) -> usize {
        self.bins.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Number of local maxima with at least `min_mass` fraction of the
    /// total — a crude mode counter (bimodality detector for Prop. 2.1).
    pub fn modes(&self, min_mass: f64) -> usize {
        let total = self.count().max(1) as f64;
        let mut modes = 0;
        for i in 0..self.bins.len() {
            let c = self.bins[i];
            if (c as f64) / total < min_mass {
                continue;
            }
            let left = if i == 0 { 0 } else { self.bins[i - 1] };
            let right = if i + 1 == self.bins.len() {
                0
            } else {
                self.bins[i + 1]
            };
            if c >= left && c > right {
                modes += 1;
            }
        }
        modes
    }

    /// Renders as rows of `#` bars with bin ranges, `width` chars max.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        let bin_w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c * width).div_ceil(max).min(width) * usize::from(c > 0));
            let lo = self.lo + bin_w * i as f64;
            out.push_str(&format!("{:>12.1} | {:<5} {}\n", lo, c, bar));
        }
        if self.underflow > 0 {
            out.push_str(&format!("  underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("   overflow: {}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.7, 9.9] {
            h.add(x);
        }
        // bin width 2: [0,2) gets 0.5 & 1.5; [2,4) gets 2.5 & 2.7; [8,10) gets 9.9
        assert_eq!(h.bins(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(5.0);
        h.add(0.5);
        assert_eq!(h.count(), 3);
        let s = h.render(10);
        assert!(s.contains("underflow: 1"));
        assert!(s.contains("overflow: 1"));
    }

    #[test]
    fn from_samples_spans_range() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins().iter().sum::<usize>(), 4);
    }

    #[test]
    fn unimodal_vs_bimodal() {
        // unimodal: everything in the middle
        let uni: Vec<f64> = (0..100).map(|i| 5.0 + 0.01 * (i % 10) as f64).collect();
        let h = Histogram::new(0.0, 10.0, 10);
        let mut h1 = h.clone();
        for &x in &uni {
            h1.add(x);
        }
        assert_eq!(h1.modes(0.05), 1);
        // bimodal: two clusters
        let mut h2 = h;
        for i in 0..50 {
            h2.add(1.0 + 0.01 * (i % 5) as f64);
            h2.add(8.0 + 0.01 * (i % 5) as f64);
        }
        assert_eq!(h2.modes(0.05), 2);
    }

    #[test]
    fn render_shape() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..8 {
            h.add(1.5);
        }
        h.add(3.5);
        let s = h.render(8);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("########"));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn bad_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
