//! Fast deterministic RNG for the Monte-Carlo harness.
//!
//! The dispersion simulators draw one random number per walk step, so RNG
//! throughput matters (see `benches/rng_ablation.rs` for the measured gap
//! against `StdRng`'s ChaCha12). We implement Xoshiro256++ seeded through
//! SplitMix64 — the reference construction from Blackman & Vigna — behind
//! the standard `rand` traits so it plugs into every API in the workspace.

use rand::rand_core::TryRng;
use rand::SeedableRng;
use std::convert::Infallible;

/// SplitMix64 step: the recommended seeder for Xoshiro, and our per-trial
/// seed derivation function (`trial_seed`).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed for trial `index` from a master seed; used by the
/// parallel executor so every trial is independently seeded yet the whole
/// experiment is reproducible from one number.
#[inline]
pub fn trial_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0xA24BAED4963EE407);
    splitmix64(&mut s)
}

/// Xoshiro256++ PRNG (Blackman & Vigna 2019): 256-bit state, period
/// `2²⁵⁶ − 1`, ~1 ns per `u64` — the workhorse generator of the harness.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds via SplitMix64 expansion of `seed` (never produces the
    /// all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Xoshiro's transition is an invertible linear map, so the stream can be
/// stepped backwards exactly — see `rand::RewindableRng` and the algebra in
/// the vendored `StdRng::back`. The partitioned engine uses this to return
/// speculatively over-drawn randomness when a trial ends mid-round.
impl rand::RewindableRng for Xoshiro256pp {
    fn rewind_u64(&mut self, draws: u64) {
        for _ in 0..draws {
            let s = &mut self.s;
            let b3 = s[3].rotate_right(45);
            let y = s[1] ^ s[2];
            let x1 = y ^ (y << 17) ^ (y << 34) ^ (y << 51);
            let x0 = s[0] ^ b3;
            *s = [x0, x1, s[1] ^ x1 ^ x0, b3 ^ x1];
        }
    }
}

// Implementing the infallible `TryRng` provides `rand::Rng` (and with it the
// whole `RngExt` surface) through rand_core's blanket impls.
impl TryRng for Xoshiro256pp {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Xoshiro256pp::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256pp::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn reference_vector() {
        // Xoshiro256++ reference: from state {1,2,3,4} the first outputs are
        // known (from the reference implementation).
        let mut r = Xoshiro256pp { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(first[0], 41943041);
        assert_eq!(first[1], 58720359);
        assert_eq!(first[2], 3588806011781223);
        assert_eq!(first[3], 3591011842654386);
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn rewind_replays_exact_stream() {
        use rand::RewindableRng;
        for seed in 0..16u64 {
            let mut r = Xoshiro256pp::new(seed);
            for _ in 0..23 {
                r.next_u64();
            }
            let reference: Vec<u64> = (0..128).map(|_| r.next_u64()).collect();
            r.rewind_u64(128);
            let replay: Vec<u64> = (0..128).map(|_| r.next_u64()).collect();
            assert_eq!(reference, replay);
            // Partial rewind: give back only the last 100 draws.
            r.rewind_u64(100);
            let tail: Vec<u64> = (0..100).map(|_| r.next_u64()).collect();
            assert_eq!(&reference[28..], &tail[..]);
        }
    }

    #[test]
    fn trial_seeds_distinct() {
        let mut seeds: Vec<u64> = (0..10_000).map(|i| trial_seed(7, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn uniformity_rough() {
        let mut r = Xoshiro256pp::new(3);
        let n = 60_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x: f64 = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn range_sampling_unbiased() {
        let mut r = Xoshiro256pp::new(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.random_range(0..5)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.2).abs() < 0.02, "{frac}");
        }
    }

    #[test]
    fn fill_bytes_all_lengths() {
        for len in 0..24 {
            let mut r = Xoshiro256pp::new(1);
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            // at least: doesn't panic, and longer buffers aren't all zero
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}
