//! Scaling-law fitting on log-log data.
//!
//! Table 1 claims asymptotic orders like `Θ(n)`, `Θ(n² log n)` or
//! `Θ(n log² n)`. To compare measured dispersion times against these shapes
//! we regress `log T` on `log n` (plain power law) and optionally on
//! `log log n` (logarithmic corrections).

/// A fitted power law `y ≈ a · n^b`.
#[derive(Clone, Copy, Debug)]
pub struct PowerFit {
    /// Amplitude `a`.
    pub amplitude: f64,
    /// Exponent `b`.
    pub exponent: f64,
    /// Coefficient of determination of the log-log regression.
    pub r2: f64,
}

/// Fits `y ≈ a · x^b` by least squares on `(ln x, ln y)`.
///
/// # Panics
///
/// Panics with fewer than 2 points or non-positive data.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> PowerFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "power-law fit requires positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let sx: f64 = lx.iter().sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let sy: f64 = ly.iter().sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let sxx: f64 = lx.iter().map(|x| x * x).sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| x * y).sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are all equal");
    let b = (n * sxy - sx * sy) / denom;
    let c = (sy - b * sx) / n;
    // R² in log space
    let mean_y = sy / n;
    let ss_tot: f64 = ly.iter().map(|y| (y - mean_y).powi(2)).sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| (y - (c + b * x)).powi(2))
        .sum(); // LINT: float-reduction-ok — fixed-order analytic reduction in slice order
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    PowerFit {
        amplitude: c.exp(),
        exponent: b,
        r2,
    }
}

/// A fitted law `y ≈ a · n^b · (ln n)^c`.
#[derive(Clone, Copy, Debug)]
pub struct PowerLogFit {
    /// Amplitude `a`.
    pub amplitude: f64,
    /// Power exponent `b`.
    pub exponent: f64,
    /// Log exponent `c`.
    pub log_exponent: f64,
}

/// Fits `y ≈ a · x^b · (ln x)^c` by least squares on
/// `ln y = ln a + b ln x + c ln ln x` (3×3 normal equations, Cramer).
///
/// # Panics
///
/// Panics with fewer than 3 points, non-positive data, or `x <= e` (so that
/// `ln ln x` is defined and positive-ish).
pub fn fit_power_log(xs: &[f64], ys: &[f64]) -> PowerLogFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 3, "need at least three points");
    assert!(
        xs.iter().all(|&x| x > std::f64::consts::E),
        "x must exceed e"
    );
    assert!(ys.iter().all(|&y| y > 0.0), "y must be positive");
    let rows: Vec<[f64; 3]> = xs.iter().map(|&x| [1.0, x.ln(), x.ln().ln()]).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    // normal equations AᵀA w = Aᵀy
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (row, &y) in rows.iter().zip(&ly) {
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            aty[i] += row[i] * y;
        }
    }
    let det3 = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det3(&ata);
    assert!(
        d.abs() > 1e-9,
        "degenerate design matrix (x values too close)"
    );
    let mut w = [0.0f64; 3];
    for k in 0..3 {
        let mut m = ata;
        for i in 0..3 {
            m[i][k] = aty[i];
        }
        w[k] = det3(&m) / d;
    }
    PowerLogFit {
        amplitude: w[0].exp(),
        exponent: w[1],
        log_exponent: w[2],
    }
}

/// Mean of `ys[i] / shape(xs[i])` — the empirical constant when the shape is
/// known (e.g. `t_par(K_n)/n → π²/6`).
pub fn shape_constant<F: Fn(f64) -> f64>(xs: &[f64], ys: &[f64], shape: F) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    let ratios: Vec<f64> = xs.iter().zip(ys).map(|(&x, &y)| y / shape(x)).collect();
    // LINT: float-reduction-ok — fixed-order mean over one in-memory slice
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs: Vec<f64> = (1..=8).map(|i| (i * i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let fit = fit_power(&xs, &ys);
        assert!((fit.exponent - 1.5).abs() < 1e-9);
        assert!((fit.amplitude - 3.0).abs() < 1e-9);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn noisy_power_law_close() {
        let xs: Vec<f64> = vec![10.0, 20.0, 40.0, 80.0, 160.0];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x * x * (1.0 + 0.02 * ((i % 2) as f64 - 0.5)))
            .collect();
        let fit = fit_power(&xs, &ys);
        assert!((fit.exponent - 2.0).abs() < 0.05, "exp {}", fit.exponent);
    }

    #[test]
    fn power_log_fit_recovers_both_exponents() {
        let xs: Vec<f64> = vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.7 * x * x * x.ln()).collect();
        let fit = fit_power_log(&xs, &ys);
        assert!((fit.exponent - 2.0).abs() < 1e-6);
        assert!((fit.log_exponent - 1.0).abs() < 1e-6);
        assert!((fit.amplitude - 0.7).abs() < 1e-6);
    }

    #[test]
    fn pure_log_square() {
        let xs: Vec<f64> = vec![16.0, 64.0, 256.0, 1024.0, 4096.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * x.ln().powi(2)).collect();
        let fit = fit_power_log(&xs, &ys);
        assert!((fit.exponent - 1.0).abs() < 1e-6);
        assert!((fit.log_exponent - 2.0).abs() < 1e-6);
    }

    #[test]
    fn shape_constant_clique() {
        let xs = vec![100.0, 200.0, 400.0];
        let ys: Vec<f64> = xs.iter().map(|x| 1.644 * x).collect();
        let c = shape_constant(&xs, &ys, |x| x);
        assert!((c - 1.644).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_data_rejected() {
        let _ = fit_power(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
