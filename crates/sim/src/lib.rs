//! # dispersion-sim
//!
//! Monte-Carlo harness for the dispersion-time reproduction:
//!
//! * [`rng::Xoshiro256pp`] — fast seedable RNG behind the `rand` traits,
//! * [`parallel::par_trials`] — deterministic trial-level multithreading,
//! * [`stats::Summary`] / [`stats::Online`] — two-pass and streaming
//!   one-pass statistics,
//! * [`dominance`] — KS tests and empirical stochastic-dominance checks
//!   (the statistics behind the Theorem 4.1 verification),
//! * [`fit`] — `a·n^b·(ln n)^c` scaling-law fitting for Table 1 shapes,
//! * [`experiment`] — one-call dispersion-time estimation for any process,
//! * [`table`] — text/CSV output,
//! * [`json`] — the shared dependency-free JSON codec (exact f64
//!   roundtrip; used by the NDJSON sinks and the `dispersion-serve`
//!   wire format),
//! * [`spec`] / [`runner`] / [`sink`] — the declarative experiment
//!   pipeline: describe a (family × size × schedule) grid once as an
//!   [`spec::ExperimentSpec`], let the streaming [`runner::Runner`]
//!   execute it deterministically across threads with adaptive
//!   trial budgets, and receive [`sink::Record`]s on pluggable
//!   [`sink::Sink`]s (tables, CSV, NDJSON checkpoints, memory).
//!
//! ```
//! use dispersion_graphs::generators::complete;
//! use dispersion_sim::experiment::{estimate_dispersion, Process};
//! use dispersion_core::process::ProcessConfig;
//!
//! let g = complete(64);
//! let s = estimate_dispersion(&g, 0, Process::Sequential,
//!                             &ProcessConfig::simple(), 100, 2, 7);
//! assert!(s.mean > 64.0); // t_seq(K_n) ≈ 1.255 n
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dominance;
pub mod experiment;
pub mod fit;
pub mod histogram;
pub mod json;
pub mod parallel;
pub mod rng;
pub mod runner;
pub mod sink;
pub mod spec;
pub mod stats;
pub mod table;

pub use experiment::{dispersion_samples, estimate_dispersion, Process};
pub use parallel::{default_threads, par_trials};
pub use rng::Xoshiro256pp;
pub use runner::Runner;
pub use sink::{Record, Sink};
pub use spec::{Budget, CellSpec, ExperimentSpec, FamilySpec, Measure};
pub use stats::{Online, Summary};
