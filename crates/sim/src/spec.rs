//! Declarative experiment specifications: the paper's (family × size ×
//! schedule) Monte-Carlo grid as data.
//!
//! An [`ExperimentSpec`] is a list of **cells**. Each [`CellSpec`] names a
//! graph instance ([`FamilySpec`] — resolving to an explicit CSR
//! [`Graph`] or a closed-form implicit [`Implicit`] topology), a
//! [`Measure`] (which per-trial statistics one engine pass yields), and a
//! [`Budget`] (a fixed trial count, or adaptive stopping on the confidence
//! interval). The streaming [`Runner`](crate::runner::Runner) executes the
//! whole spec: cells are scheduled across threads, statistics stream
//! through one-pass [`Online`](crate::stats::Online) accumulators, and
//! results arrive as [`Record`](crate::sink::Record)s on a
//! [`Sink`](crate::sink::Sink).
//!
//! Reproducibility contract: trial `t` of cell `c` always draws from
//! `Xoshiro256pp::new(trial_seed(master(c), t))`, where `master(c)` is the
//! cell's explicit master seed or a value derived from `(spec seed, c)` —
//! so results are bit-identical for any thread count, and legacy binaries
//! can pin their historical per-sweep seeds cell by cell.

use crate::experiment::Process;
use crate::rng::splitmix64;
use dispersion_core::engine::observer::{AggregateShape, DispersionTime, PhaseTimes};
use dispersion_core::engine::{self, schedule, EngineConfig, EngineError, FirstVacant};
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::families::Family;
use dispersion_graphs::topology::Implicit;
use dispersion_graphs::{Graph, Topology, Vertex};
use rand::Rng;

/// Which graph backend a [`FamilySpec`] resolves to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// Materialised CSR adjacency — works for every family.
    #[default]
    Explicit,
    /// Closed-form implicit topology — zero adjacency storage; only the
    /// families with closed-form neighbour math support it.
    Implicit,
}

impl BackendSpec {
    /// Short label for keys and tables.
    pub fn label(self) -> &'static str {
        match self {
            BackendSpec::Explicit => "explicit",
            BackendSpec::Implicit => "implicit",
        }
    }
}

/// A graph instance request: family, approximate size, backend, and the
/// deterministic ingredients (graph seed, origin override) that make the
/// resolved instance reproducible.
#[derive(Clone, Debug)]
pub struct FamilySpec {
    /// The Table 1 family.
    pub family: Family,
    /// Requested vertex count (families round to the nearest feasible
    /// size, exactly as [`Family::instance`] does).
    pub size: usize,
    /// Explicit CSR or implicit closed-form backend.
    pub backend: BackendSpec,
    /// Seed of the RNG handed to the family constructor (only random
    /// families consume it); defaults to 0.
    pub graph_seed: u64,
    /// Origin override; defaults to the family's conventional origin
    /// (path endpoint, tree root, vertex 0, …).
    pub origin: Option<Vertex>,
}

impl FamilySpec {
    /// An explicit-backend instance request.
    pub fn explicit(family: Family, size: usize) -> Self {
        FamilySpec {
            family,
            size,
            backend: BackendSpec::Explicit,
            graph_seed: 0,
            origin: None,
        }
    }

    /// An implicit-backend instance request.
    pub fn implicit(family: Family, size: usize) -> Self {
        FamilySpec {
            backend: BackendSpec::Implicit,
            ..FamilySpec::explicit(family, size)
        }
    }

    /// Sets the graph-construction seed.
    pub fn graph_seed(mut self, seed: u64) -> Self {
        self.graph_seed = seed;
        self
    }

    /// Overrides the origin vertex.
    pub fn origin(mut self, v: Vertex) -> Self {
        self.origin = Some(v);
        self
    }

    /// Builds the instance this spec describes.
    ///
    /// # Errors
    ///
    /// [`CellError::Invalid`] when the family has no implicit form and
    /// [`BackendSpec::Implicit`] was requested.
    pub fn resolve(&self) -> Result<ResolvedCell, CellError> {
        match self.backend {
            BackendSpec::Explicit => {
                // LINT: rng-discipline-ok — graph_seed IS the spec-pinned stream id:
                // the cell hash covers it, so the same spec always draws the same graph
                let mut rng = crate::rng::Xoshiro256pp::new(self.graph_seed);
                let inst = self.family.instance(self.size, &mut rng);
                Ok(ResolvedCell {
                    origin: self.origin.unwrap_or(inst.origin),
                    label: inst.label,
                    topo: ResolvedTopo::Explicit(inst.graph),
                })
            }
            BackendSpec::Implicit => {
                let imp = self.family.implicit(self.size).ok_or_else(|| {
                    CellError::Invalid(format!(
                        "family {} has no implicit topology",
                        self.family.label()
                    ))
                })?;
                Ok(ResolvedCell {
                    origin: self.origin.unwrap_or(0),
                    label: self.family.label(),
                    topo: ResolvedTopo::Implicit(imp),
                })
            }
        }
    }
}

/// A resolved graph backend: the two shapes a [`FamilySpec`] can take at
/// run time.
#[derive(Clone, Debug)]
pub enum ResolvedTopo {
    /// Materialised CSR graph.
    Explicit(Graph),
    /// Closed-form implicit family.
    Implicit(Implicit),
}

/// A resolved cell instance: backend, origin, human label.
#[derive(Clone, Debug)]
pub struct ResolvedCell {
    /// The graph backend.
    pub topo: ResolvedTopo,
    /// Origin vertex of the process.
    pub origin: Vertex,
    /// Family label (e.g. `"cycle"`).
    pub label: &'static str,
}

impl ResolvedCell {
    /// Vertex count of the resolved instance.
    pub fn n(&self) -> usize {
        match &self.topo {
            ResolvedTopo::Explicit(g) => g.n(),
            ResolvedTopo::Implicit(t) => t.n(),
        }
    }
}

/// Monomorphising dispatch over a [`ResolvedTopo`]: expands `$body` once
/// per concrete backend type, so engine hot loops never pay an enum match
/// per walk step.
#[macro_export]
macro_rules! with_resolved_topology {
    ($topo:expr, $t:ident => $body:expr) => {
        match $topo {
            $crate::spec::ResolvedTopo::Explicit($t) => $body,
            $crate::spec::ResolvedTopo::Implicit(
                ::dispersion_graphs::topology::Implicit::Path($t),
            ) => $body,
            $crate::spec::ResolvedTopo::Implicit(
                ::dispersion_graphs::topology::Implicit::Cycle($t),
            ) => $body,
            $crate::spec::ResolvedTopo::Implicit(
                ::dispersion_graphs::topology::Implicit::Torus2d($t),
            ) => $body,
            $crate::spec::ResolvedTopo::Implicit(
                ::dispersion_graphs::topology::Implicit::Hypercube($t),
            ) => $body,
            $crate::spec::ResolvedTopo::Implicit(
                ::dispersion_graphs::topology::Implicit::Complete($t),
            ) => $body,
        }
    };
}

/// What one trial of a cell measures: each engine pass yields the fixed
/// set of named statistics in [`Measure::stat_names`] order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Measure {
    /// Dispersion time of one process, in its native unit (stat `time`).
    Dispersion(Process),
    /// Parallel-IDLA dispersion time plus the Theorem 3.3 half-milestone,
    /// both from one engine pass (stats `time`, `t_half`).
    ParallelWithHalf,
    /// Total walk steps over all particles (stat `steps`) — the Theorem
    /// 4.1 equidistributed quantity.
    TotalSteps(Process),
    /// Prop. 5.10 aggregate-shape statistics of a sequential `k = n/2`
    /// fill on a 2-d torus: one pass with composed shape/time/phase
    /// observers (stats `inner_r`, `outer_r`, `fluct`, `roundness`,
    /// `t_fill`, `half_t`). Requires a square torus instance.
    TorusShapeHalfFill,
    /// Cover time of a simple random walk from the origin (stat `cover`),
    /// computed on any backend via the neighbour oracle.
    CoverTime,
}

impl Measure {
    /// Names of the statistics one trial produces, in output order.
    pub fn stat_names(&self) -> &'static [&'static str] {
        match self {
            Measure::Dispersion(_) => &["time"],
            Measure::ParallelWithHalf => &["time", "t_half"],
            Measure::TotalSteps(_) => &["steps"],
            Measure::TorusShapeHalfFill => &[
                "inner_r",
                "outer_r",
                "fluct",
                "roundness",
                "t_fill",
                "half_t",
            ],
            Measure::CoverTime => &["cover"],
        }
    }

    /// Short label for keys and tables.
    pub fn label(&self) -> String {
        match self {
            Measure::Dispersion(p) => p.label().to_string(),
            Measure::ParallelWithHalf => "par+half".to_string(),
            Measure::TotalSteps(p) => format!("steps:{}", p.label()),
            Measure::TorusShapeHalfFill => "shape".to_string(),
            Measure::CoverTime => "cover".to_string(),
        }
    }

    /// Runs one trial on a resolved backend, writing one value per
    /// [`Measure::stat_names`] entry into `out` and returning the trial's
    /// total walk-step count (what the engine's `Odometer` observer counts
    /// as `steps`) — the raw material for throughput metrics like the
    /// serve layer's steps/s gauge.
    ///
    /// # Errors
    ///
    /// Engine step-cap overruns and invalid measure/backend pairings come
    /// back as [`CellError`]s — the runner turns them into per-cell error
    /// records instead of aborting the sweep.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from `stat_names().len()`.
    pub fn run_trial<R: rand::RewindableRng + ?Sized>(
        &self,
        cell: &ResolvedCell,
        cfg: &ProcessConfig,
        out: &mut [f64],
        rng: &mut R,
    ) -> Result<u64, CellError> {
        assert_eq!(out.len(), self.stat_names().len(), "stat arity mismatch");
        with_resolved_topology!(&cell.topo, t => self.run_on(t, cell.origin, cfg, out, rng))
    }

    /// The generic trial body, monomorphised per backend.
    fn run_on<T: Topology + Sync + ?Sized, R: rand::RewindableRng + ?Sized>(
        &self,
        g: &T,
        origin: Vertex,
        cfg: &ProcessConfig,
        out: &mut [f64],
        rng: &mut R,
    ) -> Result<u64, CellError> {
        let steps = match self {
            Measure::Dispersion(p) => {
                let o = p.run_observed(g, origin, cfg, &mut (), rng)?;
                out[0] = p.dispersion_of(&o);
                o.total_steps
            }
            Measure::ParallelWithHalf => {
                let mut phases = PhaseTimes::for_particles(g.n());
                let o = Process::Parallel.run_observed(g, origin, cfg, &mut phases, rng)?;
                out[0] = o.dispersion_time() as f64;
                out[1] = phases.phases[PhaseTimes::half_index(g.n())] as f64;
                o.total_steps
            }
            Measure::TotalSteps(p) => {
                // continuous clocks do not change the jump sequence
                let p = match p {
                    Process::ContinuousSequential => Process::Sequential,
                    p => *p,
                };
                let o = p.run_observed(g, origin, cfg, &mut (), rng)?;
                out[0] = o.total_steps as f64;
                o.total_steps
            }
            Measure::TorusShapeHalfFill => {
                let n = g.n();
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    return Err(CellError::Invalid(format!(
                        "shape measure needs a square torus, got n = {n}"
                    )));
                }
                let dims = [side, side];
                let particles = (n / 2).max(1);
                let j_half = PhaseTimes::half_index(particles);
                let mut shape = AggregateShape::at_counts(origin, &dims, &[particles]);
                let mut time = DispersionTime::default();
                // tick clock: per-particle steps are not a shared clock
                // under the Sequential schedule
                let mut phases = PhaseTimes::in_ticks(particles);
                let ecfg = EngineConfig::with_particles(particles, origin, cfg);
                let o = engine::run(
                    g,
                    &mut schedule::Sequential::new(),
                    &FirstVacant,
                    &ecfg,
                    &mut (&mut shape, &mut time, &mut phases),
                    rng,
                )?;
                let s = &shape.snapshots[0].1;
                out[0] = s.inner_radius;
                out[1] = s.outer_radius;
                out[2] = s.fluctuation();
                out[3] = s.roundness();
                out[4] = time.max_steps as f64;
                out[5] = phases.phases[j_half] as f64;
                o.total_steps
            }
            Measure::CoverTime => {
                let (cover, steps) = cover_time(g, origin, cfg.step_cap, rng)?;
                out[0] = cover;
                steps
            }
        };
        Ok(steps)
    }
}

/// Simple-random-walk cover time from `origin`, on any neighbour oracle.
/// Returns `(cover_time, steps)` — identical here, but typed apart so the
/// caller can feed the step count into throughput accounting.
fn cover_time<T: Topology + ?Sized, R: Rng + ?Sized>(
    g: &T,
    origin: Vertex,
    cap: u64,
    rng: &mut R,
) -> Result<(f64, u64), CellError> {
    let n = g.n();
    let mut visited = vec![false; n];
    visited[origin as usize] = true;
    let mut remaining = n - 1;
    let mut v = origin;
    let mut steps = 0u64;
    while remaining > 0 {
        v = g.random_step(v, rng);
        steps += 1;
        let slot = &mut visited[v as usize];
        if !*slot {
            *slot = true;
            remaining -= 1;
        }
        if steps > cap {
            return Err(CellError::Engine(EngineError::StepCapExceeded {
                schedule: "cover",
                cap,
                unsettled: remaining,
            }));
        }
    }
    Ok((steps as f64, steps))
}

/// How many trials a cell runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Budget {
    /// Exactly this many trials.
    Trials(usize),
    /// Adaptive stopping: run at least `min_trials`, then stop as soon as
    /// the relative 95% CI half-width of the cell's primary statistic
    /// drops to `rel` or below, capped at `max_trials`. The stopping rule
    /// is evaluated only at deterministic round boundaries, so the trial
    /// count is identical for every `--threads` setting.
    CiHalfWidth {
        /// Target relative half-width (`1.96·sem / |mean|`).
        rel: f64,
        /// Trials to run before the first check.
        min_trials: usize,
        /// Hard ceiling on trials.
        max_trials: usize,
    },
}

impl Budget {
    /// Compact label for cell keys, e.g. `"t100"` or `"ci0.02:30:10000"`.
    pub fn label(&self) -> String {
        match self {
            Budget::Trials(n) => format!("t{n}"),
            Budget::CiHalfWidth {
                rel,
                min_trials,
                max_trials,
            } => format!("ci{rel}:{min_trials}:{max_trials}"),
        }
    }
}

/// One cell of the experiment grid.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// The graph instance.
    pub family: FamilySpec,
    /// What each trial measures.
    pub measure: Measure,
    /// How many trials to run.
    pub budget: Budget,
    /// Process configuration (walk flavour, step cap).
    pub cfg: ProcessConfig,
    /// Explicit master seed; `None` derives one from `(spec seed, cell
    /// id)`. Legacy binaries pin their historical sweep seeds here.
    pub master_seed: Option<u64>,
}

impl CellSpec {
    /// A cell with 100 trials, the simple walk config, and a derived
    /// master seed.
    pub fn new(family: FamilySpec, measure: Measure) -> Self {
        CellSpec {
            family,
            measure,
            budget: Budget::Trials(100),
            cfg: ProcessConfig::simple(),
            master_seed: None,
        }
    }

    /// Sets the trial budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the process configuration.
    pub fn config(mut self, cfg: ProcessConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Pins the master seed the per-trial RNG streams derive from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = Some(seed);
        self
    }
}

/// A whole declarative experiment: a seed plus a list of cells.
#[derive(Clone, Debug, Default)]
pub struct ExperimentSpec {
    /// Spec-level seed; cells without an explicit master seed derive
    /// theirs from `(seed, cell id)`.
    pub seed: u64,
    /// The cells, in declaration order (= cell id order).
    pub cells: Vec<CellSpec>,
}

impl ExperimentSpec {
    /// An empty spec with the given seed.
    pub fn new(seed: u64) -> Self {
        ExperimentSpec {
            seed,
            cells: Vec::new(),
        }
    }

    /// Appends a cell and returns its cell id.
    pub fn push(&mut self, cell: CellSpec) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Builder-style [`ExperimentSpec::push`].
    #[must_use]
    pub fn cell(mut self, cell: CellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the spec has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The master seed of cell `id`: its explicit override, or a value
    /// derived deterministically from `(spec seed, id)`.
    pub fn master_seed(&self, id: usize) -> u64 {
        self.cells[id].master_seed.unwrap_or_else(|| {
            let mut s = self.seed ^ (id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            splitmix64(&mut s)
        })
    }

    /// The resume fingerprint of cell `id`: everything that determines the
    /// cell's result, including the process configuration (walk kind and
    /// step cap). A checkpoint record is only reused when both its cell id
    /// and its key match the spec being run.
    pub fn cell_key(&self, id: usize) -> String {
        let c = &self.cells[id];
        let origin = c
            .family
            .origin
            .map(|v| format!(":o{v}"))
            .unwrap_or_default();
        format!(
            "{}:n{}:{}:{}:{}:m{:x}:g{:x}:w{:?}:c{:x}{}",
            c.family.family.label(),
            c.family.size,
            c.measure.label(),
            c.family.backend.label(),
            c.budget.label(),
            self.master_seed(id),
            c.family.graph_seed,
            c.cfg.walk,
            c.cfg.step_cap,
            origin
        )
    }
}

/// Why a cell failed (surfaced as an error record, not a panic).
#[derive(Clone, Debug, PartialEq)]
pub enum CellError {
    /// The engine aborted (step cap).
    Engine(EngineError),
    /// The spec asked for something the backend cannot do.
    Invalid(String),
    /// A [`CancelToken`](crate::runner::CancelToken) fired: the cell was
    /// stopped cooperatively at a trial boundary, keeping the statistics
    /// of the trials that completed.
    Cancelled,
}

impl From<EngineError> for CellError {
    fn from(e: EngineError) -> Self {
        CellError::Engine(e)
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Engine(e) => write!(f, "{e}"),
            CellError::Invalid(msg) => write!(f, "{msg}"),
            CellError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn resolve_explicit_and_implicit_agree_on_size() {
        let e = FamilySpec::explicit(Family::Cycle, 32).resolve().unwrap();
        let i = FamilySpec::implicit(Family::Cycle, 32).resolve().unwrap();
        assert_eq!(e.n(), 32);
        assert_eq!(i.n(), 32);
        assert_eq!(e.origin, i.origin);
        assert_eq!(e.label, "cycle");
    }

    #[test]
    fn implicit_unavailable_is_an_error() {
        let err = FamilySpec::implicit(Family::BinaryTree, 63)
            .resolve()
            .unwrap_err();
        assert!(matches!(err, CellError::Invalid(_)), "{err}");
    }

    #[test]
    fn origin_override_respected() {
        let r = FamilySpec::explicit(Family::Torus2d, 64)
            .origin(27)
            .resolve()
            .unwrap();
        assert_eq!(r.origin, 27);
    }

    #[test]
    fn measure_arity_matches_names() {
        let cell = FamilySpec::explicit(Family::Complete, 16)
            .resolve()
            .unwrap();
        let cfg = ProcessConfig::simple();
        for m in [
            Measure::Dispersion(Process::Sequential),
            Measure::ParallelWithHalf,
            Measure::TotalSteps(Process::Parallel),
            Measure::CoverTime,
        ] {
            let mut out = vec![f64::NAN; m.stat_names().len()];
            let mut rng = Xoshiro256pp::new(1);
            m.run_trial(&cell, &cfg, &mut out, &mut rng).unwrap();
            assert!(out.iter().all(|x| x.is_finite()), "{m:?}: {out:?}");
        }
    }

    #[test]
    fn shape_measure_requires_square_torus() {
        let cell = FamilySpec::explicit(Family::Complete, 16)
            .resolve()
            .unwrap();
        let mut out = [0.0; 6];
        let mut rng = Xoshiro256pp::new(1);
        // complete(16) has n = 16 = 4², so it passes the square check and
        // simply measures a (degenerate) shape; a non-square n must error
        let cell9 = FamilySpec::explicit(Family::Complete, 15)
            .resolve()
            .unwrap();
        let err = Measure::TorusShapeHalfFill
            .run_trial(&cell9, &ProcessConfig::simple(), &mut out, &mut rng)
            .unwrap_err();
        assert!(matches!(err, CellError::Invalid(_)));
        drop(cell);
    }

    #[test]
    fn cover_time_visits_everything() {
        let cell = FamilySpec::explicit(Family::Cycle, 24).resolve().unwrap();
        let mut out = [0.0];
        let mut rng = Xoshiro256pp::new(5);
        Measure::CoverTime
            .run_trial(&cell, &ProcessConfig::simple(), &mut out, &mut rng)
            .unwrap();
        // covering a 24-cycle needs at least n - 1 steps
        assert!(out[0] >= 23.0);
    }

    #[test]
    fn cover_time_cap_surfaces_as_error() {
        let cell = FamilySpec::explicit(Family::Cycle, 64).resolve().unwrap();
        let mut out = [0.0];
        let mut rng = Xoshiro256pp::new(5);
        let err = Measure::CoverTime
            .run_trial(
                &cell,
                &ProcessConfig::simple().with_cap(3),
                &mut out,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CellError::Engine(EngineError::StepCapExceeded { .. })
        ));
    }

    #[test]
    fn master_seed_override_and_derivation() {
        let mut spec = ExperimentSpec::new(9);
        let a = spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 16),
                Measure::Dispersion(Process::Sequential),
            )
            .master_seed(1234),
        );
        let b = spec.push(CellSpec::new(
            FamilySpec::explicit(Family::Complete, 16),
            Measure::Dispersion(Process::Parallel),
        ));
        assert_eq!(spec.master_seed(a), 1234);
        assert_ne!(spec.master_seed(b), spec.master_seed(a));
        // derived seeds depend on the spec seed
        let spec2 = ExperimentSpec {
            seed: 10,
            ..spec.clone()
        };
        assert_eq!(spec2.master_seed(a), 1234, "override survives seed change");
        assert_ne!(spec2.master_seed(b), spec.master_seed(b));
    }

    #[test]
    fn cell_keys_fingerprint_the_cell() {
        let mut spec = ExperimentSpec::new(1);
        let a = spec.push(CellSpec::new(
            FamilySpec::explicit(Family::Cycle, 32),
            Measure::Dispersion(Process::Sequential),
        ));
        let b = spec.push(CellSpec::new(
            FamilySpec::explicit(Family::Cycle, 32),
            Measure::Dispersion(Process::Parallel),
        ));
        assert_ne!(spec.cell_key(a), spec.cell_key(b));
        assert!(spec.cell_key(a).contains("cycle:n32:seq:explicit:t100"));
    }

    #[test]
    fn budget_labels() {
        assert_eq!(Budget::Trials(40).label(), "t40");
        assert_eq!(
            Budget::CiHalfWidth {
                rel: 0.02,
                min_trials: 30,
                max_trials: 10_000
            }
            .label(),
            "ci0.02:30:10000"
        );
    }
}
