//! The workspace's one JSON codec: a dependency-free value type, parser
//! and the exact-roundtrip scalar encoders.
//!
//! Originally private to [`sink`](crate::sink) (checkpoint NDJSON lines),
//! the codec is now shared by the sinks, the `dispersion-serve` HTTP
//! layer (experiment specs on the wire) and the test suites, so all of
//! them agree byte-for-byte on one encoding:
//!
//! * floats serialise with Rust's shortest-roundtrip formatting
//!   ([`fmt_f64`]) and parse back **bit-identically** — the property that
//!   makes kill + resume restarts reproduce uninterrupted runs;
//! * non-finite floats travel as the marker strings `"nan"`, `"inf"`,
//!   `"-inf"` (decoded transparently by [`Json::as_num`]);
//! * `u64` values above 2⁵³ (master seeds are arbitrary 64-bit values)
//!   travel as decimal strings, decoded transparently by
//!   [`Json::as_u64`].

/// A parsed JSON value — just what the repo's codecs need, no external
/// dependency.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as f64; also decodes `"nan"`/`"inf"` markers via
    /// [`Json::as_num`] on strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Numeric view; marker strings `"nan"`/`"inf"`/`"-inf"` decode to
    /// the non-finite floats they encode.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            // non-finite floats travel as marker strings
            Json::Str(s) => match s.as_str() {
                "nan" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// `u64` view: an exactly-representable non-negative number, or a
    /// decimal string (how [`fmt_u64`] encodes values above 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object view (key/value pairs in document order).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key of an object value (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

/// Serialises an f64 as a JSON-compatible token with exact roundtrip;
/// non-finite values are encoded as marker strings [`Json::as_num`] maps
/// back.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "\"nan\"".to_string()
    } else if x > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Serialises a u64 as a JSON token: a plain number while exactly
/// representable as f64, a decimal string above 2⁵³ (see
/// [`Json::as_u64`]).
pub fn fmt_u64(x: u64) -> String {
    if x <= (1 << 53) {
        format!("{x}")
    } else {
        format!("\"{x}\"")
    }
}

/// JSON-escapes a string, including the surrounding quotes.
pub fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                obj.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'n') => expect_lit(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {tok:?} at byte {start}"))
        }
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = parse_hex4(b, pos)?;
                        if (0xD800..0xDC00).contains(&hex) {
                            // high surrogate: a \uXXXX low surrogate must follow
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let c = 0x10000 + ((hex - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            out.push(char::from_u32(hex).ok_or("bad \\u escape")?);
                        }
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    let hex = b
        .get(*pos..end)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or("truncated \\u escape")?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
    *pos = end;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 junk").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse(" {\"a\": [1, \"\\u00e9\\ud83e\\udd80\"]} ").unwrap(),
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("é🦀".into())])
            )])
        );
    }

    #[test]
    fn u64_roundtrip_through_strings_above_2_53() {
        for x in [0u64, 7, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let tok = fmt_u64(x);
            let v = Json::parse(&tok).unwrap();
            assert_eq!(v.as_u64(), Some(x), "token {tok}");
        }
        // a float with a fractional part is not a u64
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn f64_markers_roundtrip() {
        for x in [f64::INFINITY, f64::NEG_INFINITY] {
            let v = Json::parse(&fmt_f64(x)).unwrap();
            assert_eq!(v.as_num(), Some(x));
        }
        assert!(Json::parse(&fmt_f64(f64::NAN))
            .unwrap()
            .as_num()
            .unwrap()
            .is_nan());
        let x = 0.1 + 0.2;
        assert_eq!(Json::parse(&fmt_f64(x)).unwrap().as_num(), Some(x));
    }

    #[test]
    fn get_and_views() {
        let v = Json::parse("{\"a\":1,\"b\":true,\"c\":[null]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("nope").is_none());
    }
}
