//! Trial-level parallel Monte-Carlo executor.
//!
//! Dispersion processes are inherently sequential state machines, so the
//! parallelism lever is the *trial* axis: `par_trials` fans `trials`
//! independent runs across threads, rayon-style, with work distributed by an
//! atomic counter so threads self-balance across trials of uneven length.
//! Per-trial seeds derive deterministically from one master seed: results
//! are bit-reproducible regardless of thread count or interleaving.
//!
//! Results are accumulated in per-thread buffers tagged with the trial
//! index and merged once at the end — no per-trial locks anywhere on the
//! hot path.

use crate::rng::{trial_seed, Xoshiro256pp};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default (available parallelism, at
/// least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `trials` independent trials of `f` across `threads` workers and
/// returns the results in trial order.
///
/// `f` receives the trial index and a freshly seeded RNG; the seed of trial
/// `i` is `trial_seed(master_seed, i)` regardless of scheduling, so the
/// output is deterministic in `master_seed`.
pub fn par_trials<T, F>(trials: usize, threads: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    let run_one = |i: usize| {
        let mut rng = Xoshiro256pp::new(trial_seed(master_seed, i as u64));
        f(i, &mut rng)
    };
    if threads == 1 {
        return (0..trials).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // local (index, result) buffer: threads never contend
                    // past the work counter
                    let mut local = Vec::with_capacity(trials / threads + 1);
                    loop {
                        // ORDERING: Relaxed — the counter only hands out
                        // unique indices; results are ordered by slot index
                        // at the join, not by claim order
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        local.push((i, run_one(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    // single-pass merge back into trial order
    let mut out: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    for buf in buffers {
        for (i, v) in buf {
            debug_assert!(out[i].is_none(), "trial {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|o| o.expect("trial result missing"))
        .collect()
}

/// Convenience wrapper returning `f64` samples (the common case: one scalar
/// statistic per trial).
pub fn par_samples<F>(trials: usize, threads: usize, master_seed: u64, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut Xoshiro256pp) -> f64 + Sync,
{
    par_trials(trials, threads, master_seed, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn results_in_trial_order() {
        let out = par_trials(64, 4, 1, |i, _| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let one = par_trials(40, 1, 99, |_, rng| rng.random::<u64>());
        let many = par_trials(40, 8, 99, |_, rng| rng.random::<u64>());
        assert_eq!(one, many);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = par_trials(10, 2, 1, |_, rng| rng.random::<u64>());
        let b = par_trials(10, 2, 2, |_, rng| rng.random::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = par_trials(0, 4, 1, |_, rng| rng.random::<u64>());
        assert!(out.is_empty());
    }

    #[test]
    fn single_trial_single_thread() {
        let out = par_trials(1, 16, 5, |i, _| i);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn trials_see_distinct_seeds() {
        let out = par_trials(100, 4, 7, |_, rng| rng.random::<u64>());
        let mut distinct = out.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), out.len());
    }

    #[test]
    fn uneven_trial_lengths_balance() {
        // trials of wildly different cost still come back complete and
        // ordered (self-balancing dispatch)
        let out = par_trials(33, 4, 3, |i, _| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..33).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = par_trials(8, 4, 1, |i, _| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
