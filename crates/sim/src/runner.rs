//! The deterministic streaming runner: executes a whole
//! [`ExperimentSpec`] across threads, work-stealing *across cells*.
//!
//! # Execution model
//!
//! Every cell's trial range is cut into fixed [`CHUNK`]-sized chunks at
//! deterministic boundaries. A chunk is the unit of work a thread claims:
//! it runs the chunk's trials **in trial order**, folding each sample into
//! a per-chunk one-pass [`Online`] accumulator — no sample vector is ever
//! materialised. When the last chunk of a *round* lands, the finishing
//! thread merges the chunk accumulators **in chunk order** into the cell's
//! running statistics and evaluates the cell's [`Budget`]:
//!
//! * [`Budget::Trials`] — one round covering all trials;
//! * [`Budget::CiHalfWidth`] — a `min_trials` round, then geometrically
//!   growing rounds until the relative CI half-width of the primary
//!   statistic meets the target (or `max_trials` is hit). The stopping
//!   rule only ever sees statistics over *complete* rounds, so the trial
//!   count — and with it every emitted number — is identical for any
//!   thread count.
//!
//! Trial `t` of cell `c` draws from
//! `Xoshiro256pp::new(trial_seed(spec.master_seed(c), t))` no matter which
//! thread runs it. Together with ordered merging this makes the whole run
//! **bit-identical across `--threads` settings**, checkpoint restarts
//! included.
//!
//! Threads prefer chunks of already-active cells and only activate (=
//! resolve the graph of) the next pending cell when no claimable chunk
//! exists, so at most ≈`threads` instances are resident at once while a
//! slow cell (a 500×500 torus, say) can never serialise the sweep behind
//! it: finished threads immediately steal into the next cell.
//!
//! Cells whose trials abort (step cap, invalid measure/backend pairing)
//! produce **error records** — the sweep continues; nothing panics.

use crate::rng::{trial_seed, Xoshiro256pp};
use crate::sink::{Event, Record, Sink, StatSummary};
use crate::spec::{Budget, CellError, ExperimentSpec, ResolvedCell};
use crate::stats::Online;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A cheap shareable cancellation flag, checked at **trial boundaries**:
/// once [`CancelToken::cancel`] fires, in-flight cells stop before their
/// next trial and complete with a
/// [`CellError::Cancelled`] error record (keeping the statistics of the
/// trials that did finish), and cells not yet started are recorded as
/// cancelled without resolving their instances. The run still returns one
/// record per cell.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation (idempotent, callable from any
    /// thread).
    pub fn cancel(&self) {
        // ORDERING: Relaxed — monotone flag; workers poll it and only ever
        // observe false→true, so no ordering with other memory is needed
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has fired.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Relaxed — see cancel(); a late observation just runs one
        // more chunk, which the deterministic merge already tolerates
        self.0.load(Ordering::Relaxed)
    }
}

/// Trials per work unit. This constant is part of the determinism
/// contract: chunk boundaries (and hence merge order) must not depend on
/// the machine, so never derive it from the thread count — and changing it
/// changes the low-order bits of every variance ever recorded.
pub const CHUNK: usize = 8;

/// Executes [`ExperimentSpec`]s. See the module docs for the scheduling
/// and determinism model.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with the given worker-thread count (at least 1 is used).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// Runs every cell of `spec`, streaming events into `sink`, and
    /// returns the completed records in cell order.
    ///
    /// `resume` holds records from an earlier checkpoint: any whose
    /// `(cell, key)` matches the spec is re-emitted (`resumed: true`)
    /// instead of re-run; stale or foreign records are ignored.
    pub fn run(
        &self,
        spec: &ExperimentSpec,
        resume: &[Record],
        sink: &mut dyn Sink,
    ) -> Vec<Record> {
        self.run_with_ctrl(spec, resume, sink, &CancelToken::new())
    }

    /// [`Runner::run`] with an external [`CancelToken`]: firing the token
    /// stops every cell at its next trial boundary, turning unfinished
    /// cells into `Cancelled` error records. The serve layer hands each
    /// job such a token so `DELETE /jobs/<id>` can stop a 500×500-torus
    /// cell mid-flight instead of letting it run to completion.
    pub fn run_with_ctrl(
        &self,
        spec: &ExperimentSpec,
        resume: &[Record],
        sink: &mut dyn Sink,
        ctrl: &CancelToken,
    ) -> Vec<Record> {
        let total = spec.cells.len();
        let mut cells: Vec<CellStatus> = (0..total).map(|_| CellStatus::Pending).collect();
        let mut records: Vec<Option<Record>> = vec![None; total];
        let mut done = 0usize;

        // restore checkpointed cells before any thread starts
        for r in resume {
            if r.cell < total && spec.cell_key(r.cell) == r.key && records[r.cell].is_none() {
                records[r.cell] = Some(r.clone());
                cells[r.cell] = CellStatus::Done;
                done += 1;
                sink.on_event(&Event::Done {
                    record: r,
                    resumed: true,
                });
            }
        }

        let shared = Shared {
            state: Mutex::new(State {
                cells,
                records,
                done,
                next_pending: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            total,
        };
        if done < total {
            let sink_mx = Mutex::new(&mut *sink);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|_| scope.spawn(|| worker(spec, &shared, &sink_mx, ctrl)))
                    .collect();
                for h in handles {
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                }
            });
        }
        records = shared.state.into_inner().unwrap().records;

        sink.finish();
        records
            .into_iter()
            .map(|r| r.expect("cell completed without a record"))
            .collect()
    }
}

/// Per-cell scheduler status.
enum CellStatus {
    /// Not yet activated.
    Pending,
    /// A thread is building its instance.
    Resolving,
    /// Trials in flight.
    Active(Active),
    /// Record emitted.
    Done,
}

/// Book-keeping of an in-flight cell.
struct Active {
    cell: Arc<ResolvedCell>,
    /// Per-statistic accumulators over *completed* rounds, merged in
    /// deterministic order.
    merged: Vec<Online>,
    /// Trials folded into `merged`.
    trials_done: usize,
    /// First trial index of the current round.
    round_start: usize,
    /// Trials in the current round.
    round_len: usize,
    /// Chunks handed out so far in this round.
    next_chunk: usize,
    /// Landed chunk results, indexed by chunk number.
    chunk_results: Vec<Option<ChunkOut>>,
    /// Chunks landed.
    delivered: usize,
}

impl Active {
    fn n_chunks(&self) -> usize {
        self.round_len.div_ceil(CHUNK)
    }
}

/// What one chunk brings home.
struct ChunkOut {
    /// Per-statistic accumulators over the chunk's trials, in trial order.
    stats: Vec<Online>,
    /// Trials that completed (= the count folded into `stats`).
    trials: u64,
    /// Walk steps those trials performed.
    steps: u64,
    /// First error, with the trial index it occurred at.
    error: Option<(usize, CellError)>,
}

struct State {
    cells: Vec<CellStatus>,
    records: Vec<Option<Record>>,
    done: usize,
    next_pending: usize,
    /// Set when a worker thread panicked: the remaining workers drain and
    /// exit so the scope can join and re-raise the panic.
    aborted: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    total: usize,
}

/// A unit of work handed to a thread.
enum Task {
    /// Build cell `id`'s instance.
    Resolve(usize),
    /// Run trials `lo..hi` of cell `id` (chunk `chunk_idx` of the current
    /// round).
    Chunk {
        id: usize,
        chunk_idx: usize,
        lo: usize,
        hi: usize,
        cell: Arc<ResolvedCell>,
    },
    /// All cells are done.
    Exit,
}

/// Wakes every worker if its thread unwinds, so a panic in measure or
/// observer code aborts the run (the panic re-raises at scope join)
/// instead of leaving the other workers parked on the condvar forever.
struct AbortOnPanic<'a>(&'a Shared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(mut st) = self.0.state.lock() {
                st.aborted = true;
            }
            // a poisoned lock still works: waiters re-acquire, see the
            // poison and propagate the panic themselves
            self.0.cv.notify_all();
        }
    }
}

fn worker<S: Sink + ?Sized>(
    spec: &ExperimentSpec,
    shared: &Shared,
    sink: &Mutex<&mut S>,
    ctrl: &CancelToken,
) {
    let _abort_guard = AbortOnPanic(shared);
    loop {
        let task = claim(shared);
        match task {
            Task::Exit => return,
            Task::Resolve(id) => {
                // a fired token short-circuits resolution: unstarted cells
                // become cancelled records without building their instances
                let resolved = if ctrl.is_cancelled() {
                    Err(CellError::Cancelled)
                } else {
                    spec.cells[id].family.resolve()
                };
                match resolved {
                    Ok(cell) => {
                        let key = spec.cell_key(id);
                        let cell = Arc::new(cell);
                        {
                            // Started goes out under the state lock, before
                            // any thread can claim a chunk — sinks never see
                            // a cell's Done ahead of its Started
                            let mut st = shared.state.lock().unwrap();
                            st.cells[id] = CellStatus::Active(new_active(spec, id, cell));
                            sink.lock().unwrap().on_event(&Event::Started {
                                cell: id,
                                key: &key,
                            });
                            // a zero-trial budget completes without running
                            if let CellStatus::Active(a) = &st.cells[id] {
                                if a.round_len == 0 {
                                    let record = build_record(spec, id, a, None);
                                    complete_cell(&mut st, shared, id, record, sink);
                                }
                            }
                        }
                        shared.cv.notify_all();
                    }
                    Err(e) => {
                        let record = error_record(spec, id, 0, &e);
                        let mut st = shared.state.lock().unwrap();
                        complete_cell(&mut st, shared, id, record, sink);
                        shared.cv.notify_all();
                    }
                }
            }
            Task::Chunk {
                id,
                chunk_idx,
                lo,
                hi,
                cell,
            } => {
                let out = run_chunk(spec, id, &cell, lo, hi, ctrl);
                let mut st = shared.state.lock().unwrap();
                deliver(spec, shared, &mut st, id, chunk_idx, out, sink);
            }
        }
    }
}

/// Initial [`Active`] state for a freshly resolved cell.
fn new_active(spec: &ExperimentSpec, id: usize, cell: Arc<ResolvedCell>) -> Active {
    let stat_count = spec.cells[id].measure.stat_names().len();
    let round_len = match spec.cells[id].budget {
        Budget::Trials(n) => n,
        Budget::CiHalfWidth {
            min_trials,
            max_trials,
            ..
        } => min_trials.min(max_trials),
    };
    let mut a = Active {
        cell,
        merged: vec![Online::new(); stat_count],
        trials_done: 0,
        round_start: 0,
        round_len,
        next_chunk: 0,
        chunk_results: Vec::new(),
        delivered: 0,
    };
    a.chunk_results = (0..a.n_chunks()).map(|_| None).collect();
    a
}

/// Claims the next task, blocking until one exists or everything is done.
fn claim(shared: &Shared) -> Task {
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.done == shared.total || st.aborted {
            return Task::Exit;
        }
        // 1. a chunk of an already-active cell (keeps resident instances few)
        for id in 0..st.cells.len() {
            if let CellStatus::Active(a) = &mut st.cells[id] {
                if a.next_chunk < a.n_chunks() {
                    let chunk_idx = a.next_chunk;
                    a.next_chunk += 1;
                    let lo = a.round_start + chunk_idx * CHUNK;
                    let hi = (lo + CHUNK).min(a.round_start + a.round_len);
                    return Task::Chunk {
                        id,
                        chunk_idx,
                        lo,
                        hi,
                        cell: Arc::clone(&a.cell),
                    };
                }
            }
        }
        // 2. activate the next pending cell (resumed cells are already Done)
        while st.next_pending < st.cells.len()
            && !matches!(st.cells[st.next_pending], CellStatus::Pending)
        {
            st.next_pending += 1;
        }
        if st.next_pending < st.cells.len() {
            let id = st.next_pending;
            st.next_pending += 1;
            st.cells[id] = CellStatus::Resolving;
            return Task::Resolve(id);
        }
        // 3. wait for in-flight chunks to open new rounds / finish cells
        st = shared.cv.wait(st).unwrap();
    }
}

/// Runs one chunk's trials in trial order, checking the cancel token at
/// every trial boundary (the cheap cooperative stop the serve layer's
/// `DELETE /jobs/<id>` relies on).
fn run_chunk(
    spec: &ExperimentSpec,
    id: usize,
    cell: &ResolvedCell,
    lo: usize,
    hi: usize,
    ctrl: &CancelToken,
) -> ChunkOut {
    let c = &spec.cells[id];
    let names = c.measure.stat_names();
    let master = spec.master_seed(id);
    let mut stats = vec![Online::new(); names.len()];
    let mut out = vec![0.0; names.len()];
    let mut trials = 0;
    let mut steps = 0;
    let mut error = None;
    for t in lo..hi {
        if ctrl.is_cancelled() {
            error = Some((t, CellError::Cancelled));
            break;
        }
        let mut rng = Xoshiro256pp::new(trial_seed(master, t as u64));
        match c.measure.run_trial(cell, &c.cfg, &mut out, &mut rng) {
            Ok(walked) => {
                for (acc, &x) in stats.iter_mut().zip(&out) {
                    acc.push(x);
                }
                trials += 1;
                steps += walked;
            }
            Err(e) => {
                error = Some((t, e));
                break;
            }
        }
    }
    ChunkOut {
        stats,
        trials,
        steps,
        error,
    }
}

/// Lands a chunk; on round completion merges, decides, and either opens
/// the next round or completes the cell.
fn deliver<S: Sink + ?Sized>(
    spec: &ExperimentSpec,
    shared: &Shared,
    st: &mut State,
    id: usize,
    chunk_idx: usize,
    out: ChunkOut,
    sink: &Mutex<&mut S>,
) {
    sink.lock().unwrap().on_event(&Event::Chunk {
        cell: id,
        trials: out.trials,
        steps: out.steps,
    });
    let CellStatus::Active(a) = &mut st.cells[id] else {
        unreachable!("chunk delivered to non-active cell");
    };
    debug_assert!(a.chunk_results[chunk_idx].is_none());
    a.chunk_results[chunk_idx] = Some(out);
    a.delivered += 1;
    if a.delivered < a.n_chunks() {
        return;
    }

    match finish_round(spec, id, a) {
        RoundOutcome::Done(record) => {
            complete_cell(st, shared, id, record, sink);
            shared.cv.notify_all();
        }
        RoundOutcome::Continue {
            trials_done,
            relative_ci,
        } => {
            shared.cv.notify_all();
            sink.lock().unwrap().on_event(&Event::Progress {
                cell: id,
                trials_done,
                relative_ci,
            });
        }
    }
}

/// What [`finish_round`] decided for a cell whose round just completed.
enum RoundOutcome {
    /// The cell is finished (success or error) with this record.
    Done(Record),
    /// The adaptive budget wants more trials; the next round has been
    /// opened on the `Active` and these numbers describe progress so far.
    Continue {
        /// Trials folded into the merged statistics.
        trials_done: u64,
        /// Relative CI half-width of the primary statistic.
        relative_ci: f64,
    },
}

/// Merges a completed round's chunks **in chunk order** into the cell's
/// running statistics and evaluates its budget. This is the single
/// decision point shared by the multi-threaded [`Runner`] and the
/// cell-at-a-time [`run_cell`], which is what keeps the two bit-identical.
fn finish_round(spec: &ExperimentSpec, id: usize, a: &mut Active) -> RoundOutcome {
    let mut round_error: Option<(usize, CellError)> = None;
    for chunk in a.chunk_results.iter_mut() {
        let chunk = chunk.take().expect("round complete with missing chunk");
        for (acc, part) in a.merged.iter_mut().zip(&chunk.stats) {
            acc.merge(part);
        }
        if let Some((t, e)) = chunk.error {
            // keep the error of the smallest trial index
            if round_error.as_ref().is_none_or(|(t0, _)| t < *t0) {
                round_error = Some((t, e));
            }
        }
    }
    a.trials_done = a.merged.first().map_or(0, |o| o.count() as usize);

    if let Some((t, e)) = round_error {
        return RoundOutcome::Done(error_record_from_active(spec, id, a, t, &e));
    }

    let decided_done = match spec.cells[id].budget {
        Budget::Trials(_) => true, // single round covers the whole budget
        Budget::CiHalfWidth {
            rel, max_trials, ..
        } => a.merged[0].relative_ci() <= rel || a.trials_done >= max_trials,
    };

    if decided_done {
        return RoundOutcome::Done(build_record(spec, id, a, None));
    }

    // open the next round: grow ~1.5× total, clamped to the ceiling
    let Budget::CiHalfWidth { max_trials, .. } = spec.cells[id].budget else {
        unreachable!();
    };
    let grow = (a.trials_done / 2).max(CHUNK);
    let next_len = grow.min(max_trials - a.trials_done);
    a.round_start = a.trials_done;
    a.round_len = next_len;
    a.next_chunk = 0;
    a.delivered = 0;
    a.chunk_results = (0..a.n_chunks()).map(|_| None).collect();
    RoundOutcome::Continue {
        trials_done: a.trials_done as u64,
        relative_ci: a.merged[0].relative_ci(),
    }
}

/// Runs a single cell of `spec` to completion on the calling thread,
/// streaming the same [`Event`]s a [`Runner`] would, and returns its
/// record.
///
/// Chunks run sequentially in chunk order and rounds merge through the
/// same `finish_round` the runner uses, so the record is **bit-identical**
/// to the one `Runner::run` produces for that cell at any thread count.
/// The serve layer's worker pool schedules (job, cell) pairs through this
/// entry point — cell-grained claims are what let many small jobs drain
/// past one long-running torus cell.
pub fn run_cell(
    spec: &ExperimentSpec,
    id: usize,
    ctrl: &CancelToken,
    sink: &mut dyn Sink,
) -> Record {
    let resolved = if ctrl.is_cancelled() {
        Err(CellError::Cancelled)
    } else {
        spec.cells[id].family.resolve()
    };
    let cell = match resolved {
        Ok(cell) => Arc::new(cell),
        Err(e) => {
            let record = error_record(spec, id, 0, &e);
            sink.on_event(&Event::Done {
                record: &record,
                resumed: false,
            });
            return record;
        }
    };
    let key = spec.cell_key(id);
    sink.on_event(&Event::Started {
        cell: id,
        key: &key,
    });
    let mut a = new_active(spec, id, cell);
    loop {
        if a.round_len == 0 {
            // zero-trial budget: complete without running
            let record = build_record(spec, id, &a, None);
            sink.on_event(&Event::Done {
                record: &record,
                resumed: false,
            });
            return record;
        }
        for chunk_idx in 0..a.n_chunks() {
            let lo = a.round_start + chunk_idx * CHUNK;
            let hi = (lo + CHUNK).min(a.round_start + a.round_len);
            let cell = Arc::clone(&a.cell);
            let out = run_chunk(spec, id, &cell, lo, hi, ctrl);
            sink.on_event(&Event::Chunk {
                cell: id,
                trials: out.trials,
                steps: out.steps,
            });
            a.chunk_results[chunk_idx] = Some(out);
            a.delivered += 1;
        }
        match finish_round(spec, id, &mut a) {
            RoundOutcome::Done(record) => {
                sink.on_event(&Event::Done {
                    record: &record,
                    resumed: false,
                });
                return record;
            }
            RoundOutcome::Continue {
                trials_done,
                relative_ci,
            } => {
                sink.on_event(&Event::Progress {
                    cell: id,
                    trials_done,
                    relative_ci,
                });
            }
        }
    }
}

/// Marks a cell done, stores its record and emits the `Done` event.
fn complete_cell<S: Sink + ?Sized>(
    st: &mut State,
    shared: &Shared,
    id: usize,
    record: Record,
    sink: &Mutex<&mut S>,
) {
    st.cells[id] = CellStatus::Done; // drops the Active (and its instance)
    st.records[id] = Some(record);
    st.done += 1;
    if st.done == shared.total {
        shared.cv.notify_all();
    }
    let r = st.records[id].as_ref().unwrap();
    sink.lock().unwrap().on_event(&Event::Done {
        record: r,
        resumed: false,
    });
}

/// The record of a successfully completed cell (or, with `error`, of an
/// aborted one keeping its partial statistics).
fn build_record(spec: &ExperimentSpec, id: usize, a: &Active, error: Option<String>) -> Record {
    let names = spec.cells[id].measure.stat_names();
    Record {
        cell: id,
        key: spec.cell_key(id),
        family: a.cell.label.to_string(),
        n: a.cell.n(),
        measure: spec.cells[id].measure.label(),
        backend: spec.cells[id].family.backend.label().to_string(),
        trials: a.merged.first().map_or(0, super::stats::Online::count),
        stats: names
            .iter()
            .zip(&a.merged)
            .map(|(name, o)| StatSummary::from_online(name, o))
            .collect(),
        error,
    }
}

/// Error record for a cell that aborted mid-round.
fn error_record_from_active(
    spec: &ExperimentSpec,
    id: usize,
    a: &Active,
    trial: usize,
    e: &CellError,
) -> Record {
    build_record(spec, id, a, Some(format!("trial {trial}: {e}")))
}

/// Error record for a cell that never resolved.
fn error_record(spec: &ExperimentSpec, id: usize, trial: usize, e: &CellError) -> Record {
    let c = &spec.cells[id];
    Record {
        cell: id,
        key: spec.cell_key(id),
        family: c.family.family.label().to_string(),
        n: 0,
        measure: c.measure.label(),
        backend: c.family.backend.label().to_string(),
        trials: 0,
        stats: Vec::new(),
        error: Some(format!("trial {trial}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Process;
    use crate::sink::MemorySink;
    use crate::spec::{CellSpec, FamilySpec, Measure};
    use dispersion_core::process::ProcessConfig;
    use dispersion_graphs::families::Family;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(42);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 32),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::Trials(20)),
        );
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Cycle, 16),
                Measure::ParallelWithHalf,
            )
            .budget(Budget::Trials(20)),
        );
        spec.push(
            CellSpec::new(
                FamilySpec::implicit(Family::Cycle, 16),
                Measure::Dispersion(Process::Parallel),
            )
            .budget(Budget::Trials(12)),
        );
        spec
    }

    #[test]
    fn records_complete_and_ordered() {
        let spec = tiny_spec();
        let mut sink = MemorySink::default();
        let records = Runner::new(4).run(&spec, &[], &mut sink);
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.cell, i);
            assert!(r.error.is_none(), "{:?}", r.error);
        }
        assert_eq!(records[0].trials, 20);
        assert_eq!(records[1].stats.len(), 2);
        assert_eq!(records[2].backend, "implicit");
        assert_eq!(sink.records.len(), 3);
        assert_eq!(sink.started, 3);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let spec = tiny_spec();
        let mut s1 = MemorySink::default();
        let mut s8 = MemorySink::default();
        let r1 = Runner::new(1).run(&spec, &[], &mut s1);
        let r8 = Runner::new(8).run(&spec, &[], &mut s8);
        assert_eq!(r1, r8);
    }

    #[test]
    fn implicit_and_explicit_backends_agree() {
        // PR 4 equivalence: same seeds → same trajectories on both backends
        let mut a = ExperimentSpec::new(7);
        a.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Cycle, 24),
                Measure::Dispersion(Process::Parallel),
            )
            .budget(Budget::Trials(16))
            .master_seed(99),
        );
        let mut b = ExperimentSpec::new(7);
        b.push(
            CellSpec::new(
                FamilySpec::implicit(Family::Cycle, 24),
                Measure::Dispersion(Process::Parallel),
            )
            .budget(Budget::Trials(16))
            .master_seed(99),
        );
        let ra = Runner::new(2).run(&a, &[], &mut MemorySink::default());
        let rb = Runner::new(2).run(&b, &[], &mut MemorySink::default());
        assert_eq!(ra[0].stats, rb[0].stats);
    }

    #[test]
    fn matches_legacy_estimate_dispersion() {
        use crate::experiment::estimate_dispersion;
        use dispersion_graphs::generators::complete;
        let g = complete(64);
        let legacy = estimate_dispersion(
            &g,
            0,
            Process::Sequential,
            &ProcessConfig::simple(),
            40,
            4,
            123,
        );
        let mut spec = ExperimentSpec::new(0);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 64),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::Trials(40))
            .master_seed(123),
        );
        let r = Runner::new(4).run(&spec, &[], &mut MemorySink::default());
        let s = r[0].stat("time").unwrap();
        // same trials, same per-trial seeds; one-pass vs two-pass moments
        assert!((s.mean - legacy.mean).abs() <= 1e-12 * legacy.mean.abs());
        assert!((s.var - legacy.var).abs() <= 1e-9 * legacy.var.abs());
        assert_eq!(s.min, legacy.min);
        assert_eq!(s.max, legacy.max);
    }

    #[test]
    fn adaptive_budget_stops_deterministically() {
        let mut spec = ExperimentSpec::new(5);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 64),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::CiHalfWidth {
                rel: 0.08,
                min_trials: 16,
                max_trials: 4000,
            }),
        );
        let mut s1 = MemorySink::default();
        let r1 = Runner::new(1).run(&spec, &[], &mut s1);
        let r8 = Runner::new(8).run(&spec, &[], &mut MemorySink::default());
        assert_eq!(r1, r8);
        let r = &r1[0];
        assert!(r.trials >= 16);
        assert!(
            r.trials < 4000,
            "budget should stop early, got {}",
            r.trials
        );
        let rel = r.ci95_half("time") / r.mean("time");
        assert!(rel <= 0.08, "stopped at rel CI {rel}");
        // low-variance cells stop earlier than high-variance ones
        let mut spec2 = ExperimentSpec::new(5);
        spec2.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 64),
                Measure::TotalSteps(Process::Sequential),
            )
            .budget(Budget::CiHalfWidth {
                rel: 0.08,
                min_trials: 16,
                max_trials: 4000,
            }),
        );
        let r2 = Runner::new(4).run(&spec2, &[], &mut MemorySink::default());
        assert!(r2[0].trials <= r.trials);
    }

    #[test]
    fn max_trials_caps_adaptive_cells() {
        let mut spec = ExperimentSpec::new(5);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Cycle, 16),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::CiHalfWidth {
                rel: 1e-9, // unreachable
                min_trials: 8,
                max_trials: 50,
            }),
        );
        let mut sink = MemorySink::default();
        let r = Runner::new(4).run(&spec, &[], &mut sink);
        assert_eq!(r[0].trials, 50);
        assert!(sink.progress > 0, "growing rounds emit progress events");
    }

    #[test]
    fn step_cap_becomes_error_record_not_panic() {
        let mut spec = ExperimentSpec::new(3);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Cycle, 32),
                Measure::Dispersion(Process::Parallel),
            )
            .budget(Budget::Trials(10))
            .config(ProcessConfig::simple().with_cap(4)),
        );
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 16),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::Trials(10)),
        );
        let r1 = Runner::new(1).run(&spec, &[], &mut MemorySink::default());
        let r4 = Runner::new(4).run(&spec, &[], &mut MemorySink::default());
        assert_eq!(r1, r4, "error records are deterministic too");
        assert!(r1[0].error.as_ref().unwrap().contains("trial 0"));
        assert!(r1[1].error.is_none(), "other cells still complete");
        assert_eq!(r1[1].trials, 10);
    }

    #[test]
    fn unresolvable_cell_is_an_error_record() {
        let mut spec = ExperimentSpec::new(3);
        spec.push(CellSpec::new(
            FamilySpec::implicit(Family::BinaryTree, 63),
            Measure::Dispersion(Process::Sequential),
        ));
        let r = Runner::new(2).run(&spec, &[], &mut MemorySink::default());
        assert!(r[0].error.as_ref().unwrap().contains("implicit"));
        assert_eq!(r[0].trials, 0);
    }

    #[test]
    fn resume_skips_matching_cells_and_reruns_stale_ones() {
        let spec = tiny_spec();
        let full = Runner::new(2).run(&spec, &[], &mut MemorySink::default());
        // resume with the first two records: only cell 2 re-runs
        let mut sink = MemorySink::default();
        let resumed = Runner::new(2).run(&spec, &full[..2], &mut sink);
        assert_eq!(resumed, full);
        assert_eq!(sink.resumed, 2);
        assert_eq!(sink.started, 1, "only the missing cell was activated");
        // a stale key is ignored and its cell re-run
        let mut stale = full.clone();
        stale[1].key = "something else".into();
        let mut sink2 = MemorySink::default();
        let again = Runner::new(2).run(&spec, &stale, &mut sink2);
        assert_eq!(again, full);
        assert_eq!(sink2.resumed, 2);
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_records() {
        let spec = tiny_spec();
        let ctrl = CancelToken::new();
        ctrl.cancel();
        let mut sink = MemorySink::default();
        let records = Runner::new(4).run_with_ctrl(&spec, &[], &mut sink, &ctrl);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(
                r.error.as_ref().unwrap().contains("cancelled"),
                "{:?}",
                r.error
            );
            assert_eq!(r.trials, 0);
        }
        assert_eq!(sink.started, 0, "cancelled cells never resolve");
    }

    #[test]
    fn cancel_mid_run_keeps_finished_cells_and_resumes_cleanly() {
        // cancel after the first Done: earlier cells keep their records,
        // later ones become Cancelled — and a resume with the kept records
        // reproduces the uninterrupted run exactly
        struct CancelAfterFirst<'a>(&'a CancelToken, MemorySink);
        impl Sink for CancelAfterFirst<'_> {
            fn on_event(&mut self, e: &Event) {
                if matches!(e, Event::Done { .. }) {
                    self.0.cancel();
                }
                self.1.on_event(e);
            }
        }
        let spec = tiny_spec();
        let full = Runner::new(1).run(&spec, &[], &mut MemorySink::default());
        let ctrl = CancelToken::new();
        let mut sink = CancelAfterFirst(&ctrl, MemorySink::default());
        let partial = Runner::new(1).run_with_ctrl(&spec, &[], &mut sink, &ctrl);
        let kept: Vec<Record> = partial
            .iter()
            .filter(|r| r.error.is_none())
            .cloned()
            .collect();
        assert!(!kept.is_empty() && kept.len() < spec.len());
        for r in &partial {
            if let Some(err) = &r.error {
                assert!(err.contains("cancelled"));
            }
        }
        let resumed = Runner::new(2).run(&spec, &kept, &mut MemorySink::default());
        assert_eq!(resumed, full);
    }

    #[test]
    fn run_cell_matches_runner() {
        let spec = tiny_spec();
        let full = Runner::new(4).run(&spec, &[], &mut MemorySink::default());
        let ctrl = CancelToken::new();
        for (id, want) in full.iter().enumerate() {
            let mut sink = MemorySink::default();
            let r = run_cell(&spec, id, &ctrl, &mut sink);
            assert_eq!(&r, want, "cell {id}");
            assert_eq!(sink.records.len(), 1);
            assert!(sink.chunks > 0);
            assert!(sink.steps > 0);
        }
        // adaptive budgets go through the same finish_round decisions
        let mut adaptive = ExperimentSpec::new(5);
        adaptive.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 64),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::CiHalfWidth {
                rel: 0.08,
                min_trials: 16,
                max_trials: 4000,
            }),
        );
        let via_runner = Runner::new(8).run(&adaptive, &[], &mut MemorySink::default());
        let solo = run_cell(&adaptive, 0, &ctrl, &mut MemorySink::default());
        assert_eq!(solo, via_runner[0]);
    }

    #[test]
    fn chunk_events_count_trials_and_steps() {
        let spec = tiny_spec();
        let mut sink = MemorySink::default();
        let records = Runner::new(2).run(&spec, &[], &mut sink);
        let total_trials: u64 = records.iter().map(|r| r.trials).sum();
        assert_eq!(sink.trials, total_trials);
        assert!(sink.steps > 0);
        assert_eq!(
            sink.chunks,
            records
                .iter()
                .map(|r| r.trials.div_ceil(CHUNK as u64))
                .sum::<u64>() as usize
        );
    }

    #[test]
    fn zero_trials_budget_completes() {
        let mut spec = ExperimentSpec::new(1);
        spec.push(
            CellSpec::new(
                FamilySpec::explicit(Family::Complete, 16),
                Measure::Dispersion(Process::Sequential),
            )
            .budget(Budget::Trials(0)),
        );
        let r = Runner::new(3).run(&spec, &[], &mut MemorySink::default());
        assert_eq!(r[0].trials, 0);
        assert!(r[0].error.is_none());
    }
}
