//! High-level experiment drivers: estimate dispersion times of any process
//! variant over many parallel trials, streaming statistics out of the
//! schedule-generic engine instead of materialising per-run state.

use crate::parallel::par_trials;
use crate::stats::Summary;
use dispersion_core::engine::observer::PhaseTimes;
use dispersion_core::engine::{self, schedule, EngineConfig, EngineError, FirstVacant};
use dispersion_core::process::continuous::sample_gamma_int;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::{Topology, Vertex};

/// Which dispersion process to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Process {
    /// Sequential-IDLA (dispersion = longest walk, in steps).
    Sequential,
    /// Parallel-IDLA (dispersion = rounds until the last particle settles).
    Parallel,
    /// Uniform-IDLA (dispersion = global ticks).
    Uniform,
    /// Continuous-time Uniform IDLA (dispersion = real time).
    Ctu,
    /// Continuous-time Sequential-IDLA (dispersion = real time).
    ContinuousSequential,
}

impl Process {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Process::Sequential => "seq",
            Process::Parallel => "par",
            Process::Uniform => "unif",
            Process::Ctu => "ctu",
            Process::ContinuousSequential => "cseq",
        }
    }

    /// All five scheduler variants, in Table 1 order.
    pub fn all() -> [Process; 5] {
        [
            Process::Sequential,
            Process::Parallel,
            Process::Uniform,
            Process::Ctu,
            Process::ContinuousSequential,
        ]
    }

    /// Runs one realization through the engine with the observer `obs`
    /// attached, returning the raw [`engine::EngineOutcome`].
    ///
    /// Generic over the graph backend: pass a `&Graph` or one of the
    /// implicit `dispersion_graphs::topology` families — the engine
    /// monomorphises per backend, so implicit runs never materialise an
    /// adjacency.
    ///
    /// This is the composition point: pass `&mut (&mut time, &mut shape)`
    /// to measure several statistics in a single pass.
    ///
    /// For [`Process::ContinuousSequential`] the jump sequence is the
    /// discrete sequential run (that is what observers see); the outcome's
    /// `time` field carries the per-particle `Gamma(ρ, 1)` Poisson-clock
    /// settle time, sampled after the walk.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StepCapExceeded`] when the safety cap fires.
    pub fn run_observed<T, O, R>(
        self,
        g: &T,
        origin: Vertex,
        cfg: &ProcessConfig,
        obs: &mut O,
        rng: &mut R,
    ) -> Result<engine::EngineOutcome, EngineError>
    where
        T: Topology + Sync + ?Sized,
        O: engine::Observer,
        R: rand::RewindableRng + ?Sized,
    {
        let ecfg = EngineConfig::full(g, origin, cfg);
        match self {
            Process::Sequential => engine::run(
                g,
                &mut schedule::Sequential::new(),
                &FirstVacant,
                &ecfg,
                obs,
                rng,
            ),
            Process::ContinuousSequential => {
                let mut out = engine::run(
                    g,
                    &mut schedule::Sequential::new(),
                    &FirstVacant,
                    &ecfg,
                    obs,
                    rng,
                )?;
                out.time = out
                    .steps
                    .iter()
                    .map(|&rho| sample_gamma_int(rho, rng))
                    .fold(0.0, f64::max);
                Ok(out)
            }
            // Routed through the partitioned engine: serial for
            // walker_threads <= 1, partitioned rounds otherwise —
            // bit-identical either way, so the knob never shows up in
            // results or cell fingerprints.
            Process::Parallel => engine::partition::run_parallel(g, &FirstVacant, &ecfg, obs, rng),
            Process::Uniform => engine::run(
                g,
                &mut schedule::Uniform::new(g.n()),
                &FirstVacant,
                &ecfg,
                obs,
                rng,
            ),
            Process::Ctu => {
                engine::run(g, &mut schedule::Ctu::new(), &FirstVacant, &ecfg, obs, rng)
            }
        }
    }

    /// Runs one realization and returns its dispersion time in the process's
    /// native unit (steps, rounds, ticks or real time).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StepCapExceeded`] when the safety cap fires.
    pub fn try_dispersion_time<T: Topology + Sync + ?Sized, R: rand::RewindableRng + ?Sized>(
        self,
        g: &T,
        origin: Vertex,
        cfg: &ProcessConfig,
        rng: &mut R,
    ) -> Result<f64, EngineError> {
        let out = self.run_observed(g, origin, cfg, &mut (), rng)?;
        Ok(self.dispersion_of(&out))
    }

    /// Extracts this process's dispersion time, in its native unit, from
    /// a finished [`engine::EngineOutcome`] (steps for Sequential, rounds
    /// for Parallel, global ticks for Uniform, real time for the
    /// continuous clocks).
    pub fn dispersion_of(self, out: &engine::EngineOutcome) -> f64 {
        match self {
            Process::Sequential | Process::Parallel => out.dispersion_time() as f64,
            Process::Uniform => out.settle_tick as f64,
            Process::Ctu | Process::ContinuousSequential => out.time,
        }
    }
}

/// Turns per-trial results into a `Result` over the whole sample, keeping
/// the error of the *smallest* trial index so the outcome is deterministic
/// regardless of thread scheduling.
fn collect_trials<T>(results: Vec<Result<T, EngineError>>) -> Result<Vec<T>, EngineError> {
    // results are in trial order already (par_trials merges by index)
    results.into_iter().collect()
}

/// Draws `trials` dispersion-time samples of `process` on `g` from `origin`
/// across `threads` workers, deterministically in `seed`. Works on any
/// `Sync` [`Topology`] backend.
///
/// # Errors
///
/// Returns the error of the first (lowest-index) trial whose engine run
/// exceeded the step cap; no worker thread ever panics mid-trial.
pub fn try_dispersion_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Result<Vec<f64>, EngineError> {
    collect_trials(par_trials(trials, threads, seed, |_, rng| {
        process.try_dispersion_time(g, origin, cfg, rng)
    }))
}

/// Panicking convenience wrapper over [`try_dispersion_samples`].
///
/// # Panics
///
/// Panics (at the call site, after all trials resolve — never inside a
/// worker thread) if any trial exceeded the step cap.
pub fn dispersion_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64> {
    try_dispersion_samples(g, origin, process, cfg, trials, threads, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Summary of [`try_dispersion_samples`].
///
/// # Errors
///
/// Propagates the first trial's [`EngineError`], like
/// [`try_dispersion_samples`].
#[allow(clippy::too_many_arguments)]
pub fn try_estimate_dispersion<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Result<Summary, EngineError> {
    Ok(Summary::from_samples(&try_dispersion_samples(
        g, origin, process, cfg, trials, threads, seed,
    )?))
}

/// Summary of [`dispersion_samples`].
///
/// # Panics
///
/// Panics if any trial exceeded the step cap; see
/// [`try_estimate_dispersion`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_dispersion<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Summary {
    try_estimate_dispersion(g, origin, process, cfg, trials, threads, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Draws `trials` samples of the *total* number of steps (all particles),
/// the quantity that Theorem 4.1 shows is equidistributed between the
/// sequential and parallel processes.
///
/// # Errors
///
/// Returns the lowest-index trial's [`EngineError`] instead of panicking
/// in a worker thread.
pub fn try_total_steps_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Result<Vec<f64>, EngineError> {
    collect_trials(par_trials(trials, threads, seed, |_, rng| {
        // the continuous clocks do not change the jump sequence, so every
        // variant's total steps comes straight from its engine outcome
        let p = match process {
            Process::ContinuousSequential => Process::Sequential,
            p => p,
        };
        Ok(p.run_observed(g, origin, cfg, &mut (), rng)?.total_steps as f64)
    }))
}

/// Panicking convenience wrapper over [`try_total_steps_samples`].
///
/// # Panics
///
/// Panics if any trial exceeded the step cap.
pub fn total_steps_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64> {
    try_total_steps_samples(g, origin, process, cfg, trials, threads, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Draws `trials` Theorem 3.3/3.5 phase profiles of the Parallel schedule:
/// each sample is `phases[j]`, the first round at which fewer than `2^j`
/// particles remain unsettled (`j = 0` is the full dispersion time). The
/// profile streams out of a [`PhaseTimes`] observer — no trajectories are
/// stored, so this works at any `n` the simulation itself can reach.
///
/// # Errors
///
/// Returns the lowest-index trial's [`EngineError`] instead of panicking
/// in a worker thread.
pub fn try_phase_time_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Result<Vec<Vec<u64>>, EngineError> {
    collect_trials(par_trials(trials, threads, seed, |_, rng| {
        let mut phases = PhaseTimes::for_particles(g.n());
        Process::Parallel.run_observed(g, origin, cfg, &mut phases, rng)?;
        Ok(phases.phases)
    }))
}

/// Panicking convenience wrapper over [`try_phase_time_samples`].
///
/// # Panics
///
/// Panics if any trial exceeded the step cap.
pub fn phase_time_samples<T: Topology + Sync + ?Sized>(
    g: &T,
    origin: Vertex,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    try_phase_time_samples(g, origin, cfg, trials, threads, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Column means of [`phase_time_samples`]: `profile[j]` is the mean round
/// at which fewer than `2^j` particles remained.
pub fn mean_phase_profile(samples: &[Vec<u64>]) -> Vec<f64> {
    if samples.is_empty() {
        return Vec::new();
    }
    let jmax = samples[0].len();
    (0..jmax)
        // LINT: float-reduction-ok — column mean in sample-slot order, which
        // the deterministic merge already fixed
        .map(|j| samples.iter().map(|s| s[j] as f64).sum::<f64>() / samples.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{consistent_with_dominance, ks_p_value};
    use dispersion_graphs::generators::{complete, cycle};

    #[test]
    fn sequential_estimate_on_clique_near_kappa_cc() {
        let n = 256usize;
        let g = complete(n);
        let s = estimate_dispersion(
            &g,
            0,
            Process::Sequential,
            &ProcessConfig::simple(),
            300,
            4,
            1,
        );
        let ratio = s.mean / n as f64;
        // κ_cc ≈ 1.255
        assert!((1.0..1.6).contains(&ratio), "t_seq/n = {ratio}");
    }

    #[test]
    fn parallel_estimate_on_clique_near_pi2_over_6() {
        let n = 256usize;
        let g = complete(n);
        let s = estimate_dispersion(
            &g,
            0,
            Process::Parallel,
            &ProcessConfig::simple(),
            300,
            4,
            2,
        );
        let ratio = s.mean / n as f64;
        // π²/6 ≈ 1.645
        assert!((1.3..2.0).contains(&ratio), "t_par/n = {ratio}");
    }

    #[test]
    fn theorem_4_1_statistics_on_cycle() {
        let g = cycle(24);
        let cfg = ProcessConfig::simple();
        let seq = dispersion_samples(&g, 0, Process::Sequential, &cfg, 800, 4, 3);
        let par = dispersion_samples(&g, 0, Process::Parallel, &cfg, 800, 4, 4);
        // stochastic dominance τ_seq ⪯ τ_par up to sampling noise
        assert!(consistent_with_dominance(&seq, &par, 0.08));
        // total steps equidistributed
        let ts = total_steps_samples(&g, 0, Process::Sequential, &cfg, 800, 4, 5);
        let tp = total_steps_samples(&g, 0, Process::Parallel, &cfg, 800, 4, 6);
        let p = ks_p_value(&ts, &tp);
        assert!(p > 0.001, "total-steps KS p-value {p}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = cycle(16);
        let cfg = ProcessConfig::simple();
        let a = dispersion_samples(&g, 0, Process::Parallel, &cfg, 50, 2, 42);
        let b = dispersion_samples(&g, 0, Process::Parallel, &cfg, 50, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn all_process_labels_distinct() {
        let ps = Process::all();
        let mut labels: Vec<_> = ps.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ps.len());
    }

    #[test]
    fn try_dispersion_time_surfaces_cap() {
        let g = cycle(32);
        let cfg = ProcessConfig::simple().with_cap(4);
        let mut rng = crate::rng::Xoshiro256pp::new(1);
        let err = Process::Parallel
            .try_dispersion_time(&g, 0, &cfg, &mut rng)
            .unwrap_err();
        assert!(matches!(err, EngineError::StepCapExceeded { .. }));
    }

    #[test]
    fn try_samplers_propagate_cap_instead_of_panicking() {
        let g = cycle(32);
        let cfg = ProcessConfig::simple().with_cap(4);
        assert!(matches!(
            try_dispersion_samples(&g, 0, Process::Parallel, &cfg, 16, 4, 1),
            Err(EngineError::StepCapExceeded { .. })
        ));
        assert!(try_estimate_dispersion(&g, 0, Process::Parallel, &cfg, 16, 4, 1).is_err());
        assert!(try_total_steps_samples(&g, 0, Process::Parallel, &cfg, 16, 4, 1).is_err());
        assert!(try_phase_time_samples(&g, 0, &cfg, 16, 4, 1).is_err());
        // and a healthy run still succeeds through the same paths
        let ok =
            try_dispersion_samples(&g, 0, Process::Parallel, &ProcessConfig::simple(), 8, 2, 1)
                .unwrap();
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn phase_profiles_monotone_and_anchor_at_dispersion() {
        let g = complete(64);
        let cfg = ProcessConfig::simple();
        let samples = phase_time_samples(&g, 0, &cfg, 20, 4, 9);
        assert_eq!(samples.len(), 20);
        for s in &samples {
            for w in s.windows(2) {
                assert!(w[0] >= w[1], "profile not monotone: {s:?}");
            }
        }
        let profile = mean_phase_profile(&samples);
        assert_eq!(profile.len(), samples[0].len());
        // phases[0] is the full dispersion time; it must dominate the rest
        assert!(profile[0] >= profile[profile.len() - 1]);
    }

    #[test]
    fn observers_compose_through_process() {
        use dispersion_core::engine::observer::{DispersionTime, Odometer};
        let g = complete(32);
        let mut rng = crate::rng::Xoshiro256pp::new(4);
        let mut time = DispersionTime::default();
        let mut odo = Odometer::default();
        let out = Process::Parallel
            .run_observed(
                &g,
                0,
                &ProcessConfig::simple(),
                &mut (&mut time, &mut odo),
                &mut rng,
            )
            .unwrap();
        assert_eq!(time.max_steps, out.dispersion_time());
        assert_eq!(odo.steps, out.total_steps);
    }
}
