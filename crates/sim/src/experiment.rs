//! High-level experiment drivers: estimate dispersion times of any process
//! variant over many parallel trials.

use crate::parallel::par_samples;
use crate::stats::Summary;
use dispersion_core::process::continuous::{run_continuous_sequential, run_ctu};
use dispersion_core::process::parallel::run_parallel;
use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::uniform::run_uniform;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::{Graph, Vertex};

/// Which dispersion process to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Process {
    /// Sequential-IDLA (dispersion = longest walk, in steps).
    Sequential,
    /// Parallel-IDLA (dispersion = rounds until the last particle settles).
    Parallel,
    /// Uniform-IDLA (dispersion = global ticks).
    Uniform,
    /// Continuous-time Uniform IDLA (dispersion = real time).
    Ctu,
    /// Continuous-time Sequential-IDLA (dispersion = real time).
    ContinuousSequential,
}

impl Process {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Process::Sequential => "seq",
            Process::Parallel => "par",
            Process::Uniform => "unif",
            Process::Ctu => "ctu",
            Process::ContinuousSequential => "cseq",
        }
    }

    /// Runs one realization and returns its dispersion time in the process's
    /// native unit (steps, rounds, ticks or real time).
    pub fn dispersion_time<R: rand::Rng + ?Sized>(
        self,
        g: &Graph,
        origin: Vertex,
        cfg: &ProcessConfig,
        rng: &mut R,
    ) -> f64 {
        match self {
            Process::Sequential => run_sequential(g, origin, cfg, rng).dispersion_time as f64,
            Process::Parallel => run_parallel(g, origin, cfg, rng).dispersion_time as f64,
            Process::Uniform => run_uniform(g, origin, cfg, rng).settle_tick as f64,
            Process::Ctu => run_ctu(g, origin, cfg, rng).settle_time,
            Process::ContinuousSequential => {
                run_continuous_sequential(g, origin, cfg, rng).settle_time
            }
        }
    }
}

/// Draws `trials` dispersion-time samples of `process` on `g` from `origin`
/// across `threads` workers, deterministically in `seed`.
pub fn dispersion_samples(
    g: &Graph,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64> {
    par_samples(trials, threads, seed, |_, rng| {
        process.dispersion_time(g, origin, cfg, rng)
    })
}

/// Summary of [`dispersion_samples`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_dispersion(
    g: &Graph,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Summary {
    Summary::from_samples(&dispersion_samples(
        g, origin, process, cfg, trials, threads, seed,
    ))
}

/// Draws `trials` samples of the *total* number of steps (all particles),
/// the quantity that Theorem 4.1 shows is equidistributed between the
/// sequential and parallel processes.
pub fn total_steps_samples(
    g: &Graph,
    origin: Vertex,
    process: Process,
    cfg: &ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Vec<f64> {
    par_samples(trials, threads, seed, |_, rng| match process {
        Process::Sequential => run_sequential(g, origin, cfg, rng).total_steps as f64,
        Process::Parallel => run_parallel(g, origin, cfg, rng).total_steps as f64,
        Process::Uniform => run_uniform(g, origin, cfg, rng).outcome.total_steps as f64,
        Process::Ctu => run_ctu(g, origin, cfg, rng).outcome.total_steps as f64,
        Process::ContinuousSequential => {
            run_continuous_sequential(g, origin, cfg, rng)
                .outcome
                .total_steps as f64
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{consistent_with_dominance, ks_p_value};
    use dispersion_graphs::generators::{complete, cycle};

    #[test]
    fn sequential_estimate_on_clique_near_kappa_cc() {
        let n = 256usize;
        let g = complete(n);
        let s = estimate_dispersion(
            &g,
            0,
            Process::Sequential,
            &ProcessConfig::simple(),
            300,
            4,
            1,
        );
        let ratio = s.mean / n as f64;
        // κ_cc ≈ 1.255
        assert!((1.0..1.6).contains(&ratio), "t_seq/n = {ratio}");
    }

    #[test]
    fn parallel_estimate_on_clique_near_pi2_over_6() {
        let n = 256usize;
        let g = complete(n);
        let s = estimate_dispersion(
            &g,
            0,
            Process::Parallel,
            &ProcessConfig::simple(),
            300,
            4,
            2,
        );
        let ratio = s.mean / n as f64;
        // π²/6 ≈ 1.645
        assert!((1.3..2.0).contains(&ratio), "t_par/n = {ratio}");
    }

    #[test]
    fn theorem_4_1_statistics_on_cycle() {
        let g = cycle(24);
        let cfg = ProcessConfig::simple();
        let seq = dispersion_samples(&g, 0, Process::Sequential, &cfg, 800, 4, 3);
        let par = dispersion_samples(&g, 0, Process::Parallel, &cfg, 800, 4, 4);
        // stochastic dominance τ_seq ⪯ τ_par up to sampling noise
        assert!(consistent_with_dominance(&seq, &par, 0.08));
        // total steps equidistributed
        let ts = total_steps_samples(&g, 0, Process::Sequential, &cfg, 800, 4, 5);
        let tp = total_steps_samples(&g, 0, Process::Parallel, &cfg, 800, 4, 6);
        let p = ks_p_value(&ts, &tp);
        assert!(p > 0.001, "total-steps KS p-value {p}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = cycle(16);
        let cfg = ProcessConfig::simple();
        let a = dispersion_samples(&g, 0, Process::Parallel, &cfg, 50, 2, 42);
        let b = dispersion_samples(&g, 0, Process::Parallel, &cfg, 50, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn all_process_labels_distinct() {
        let ps = [
            Process::Sequential,
            Process::Parallel,
            Process::Uniform,
            Process::Ctu,
            Process::ContinuousSequential,
        ];
        let mut labels: Vec<_> = ps.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ps.len());
    }
}
