//! Fixed-width table and CSV output for the experiment binaries.

/// A simple text table: a header row plus data rows, rendered with
/// column-wise padding.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as newline-delimited JSON: one object per data row, keyed by
    /// the header. Cells that parse as finite numbers are emitted as JSON
    /// numbers, everything else as strings — so `BENCH_*.json` trajectory
    /// captures need no ad-hoc parsing.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (c, (key, cell)) in self.header.iter().zip(row).enumerate() {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(key));
                out.push(':');
                out.push_str(&json_value(cell));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// JSON-escapes a string, including the surrounding quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell as a JSON value: a bare number when it parses as one (and is
/// finite — JSON has no inf/nan), otherwise an escaped string. The parsed
/// value is re-serialised through `f64`'s shortest-roundtrip `Display`, so
/// Rust-parseable spellings that JSON forbids ("5.", ".5", "+3", "1e3")
/// still come out as valid JSON numbers.
fn json_value(cell: &str) -> String {
    let numeric_chars = cell
        .chars()
        .all(|c| matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'));
    match cell.parse::<f64>() {
        Ok(x) if x.is_finite() && numeric_chars && !cell.is_empty() => format!("{x}"),
        _ => json_string(cell),
    }
}

/// Formats a throughput-style rate (events/second) compactly for table
/// cells: `"8.21M"`, `"453k"`, `"97.3"`.
pub fn fmt_rate(x: f64) -> String {
    if !x.is_finite() {
        return x.to_string();
    }
    if x.abs() >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x.abs() >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x.abs() >= 1e3 {
        format!("{:.0}k", x / 1e3)
    } else {
        fmt_f(x)
    }
}

/// Formats a float with 3 significant-ish decimals for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["n", "mean"]);
        t.push_row(["16", "1.5"]);
        t.push_row(["1024", "123.4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[2].trim_start().starts_with("16"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["x,y", "pl\"ain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"pl\"\"ain\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn json_lines_numbers_and_strings() {
        let mut t = TextTable::new(["family", "n", "mean"]);
        t.push_row(["cycle", "16", "1.5"]);
        t.push_row(["we\"ird", "8", "n/a"]);
        let j = t.to_json_lines();
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"family":"cycle","n":16,"mean":1.5}"#);
        assert_eq!(lines[1], r#"{"family":"we\"ird","n":8,"mean":"n/a"}"#);
    }

    #[test]
    fn json_rejects_non_finite_lookalikes() {
        // "inf" and "nan" parse as f64 but are not valid JSON numbers
        assert_eq!(super::json_value("inf"), "\"inf\"");
        assert_eq!(super::json_value("NaN"), "\"NaN\"");
        assert_eq!(super::json_value(""), "\"\"");
        // Rust-parseable but JSON-invalid spellings are normalised
        assert_eq!(super::json_value("1e3"), "1000");
        assert_eq!(super::json_value("5."), "5");
        assert_eq!(super::json_value(".5"), "0.5");
        assert_eq!(super::json_value("+3"), "3");
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234"); // round-half-to-even
        assert_eq!(fmt_f(56.78), "56.8");
        assert_eq!(fmt_f(1.2345), "1.234");
    }

    #[test]
    fn rate_formats() {
        assert_eq!(fmt_rate(8_210_000.0), "8.21M");
        assert_eq!(fmt_rate(2_500_000_000.0), "2.50G");
        assert_eq!(fmt_rate(453_000.0), "453k");
        assert_eq!(fmt_rate(97.3), "97.3");
        assert_eq!(fmt_rate(0.0), "0");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
