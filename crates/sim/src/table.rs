//! Fixed-width table and CSV output for the experiment binaries.

/// A simple text table: a header row plus data rows, rendered with
/// column-wise padding.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant-ish decimals for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["n", "mean"]);
        t.push_row(["16", "1.5"]);
        t.push_row(["1024", "123.4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[2].trim_start().starts_with("16"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["x,y", "pl\"ain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"pl\"\"ain\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234"); // round-half-to-even
        assert_eq!(fmt_f(56.78), "56.8");
        assert_eq!(fmt_f(1.2345), "1.234");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
