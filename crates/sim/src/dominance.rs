//! Empirical distribution comparisons: Kolmogorov–Smirnov statistics and
//! stochastic-dominance checks.
//!
//! Used to verify the coupling results of Section 4 empirically:
//! `τ_seq ⪯ τ_par` (Theorem 4.1, checked via one-sided CDF dominance) and
//! the equality in distribution of the total step counts (checked via a
//! two-sample KS test).

/// Two-sample Kolmogorov–Smirnov statistic
/// `D = sup_x |F_a(x) − F_b(x)|`.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Asymptotic p-value of the two-sample KS test (Kolmogorov distribution
/// tail `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`).
pub fn ks_p_value(a: &[f64], b: &[f64]) -> f64 {
    let d = ks_statistic(a, b);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    kolmogorov_q(lambda)
}

fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sided empirical check of `A ⪯ B` (A stochastically dominated by B):
/// returns the maximum violation `sup_x (F_b(x) − F_a(x))⁺`; a value near 0
/// is consistent with dominance, large positive values refute it.
///
/// (`A ⪯ B` means `Pr[A > x] ≤ Pr[B > x]` for all `x`, i.e.
/// `F_a(x) ≥ F_b(x)`.)
pub fn dominance_violation(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut worst: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        worst = worst.max(j as f64 / nb - i as f64 / na);
    }
    worst
}

/// Convenience: `true` when the empirical evidence is consistent with
/// `A ⪯ B` up to sampling noise `tol`.
pub fn consistent_with_dominance(a: &[f64], b: &[f64], tol: f64) -> bool {
    dominance_violation(a, b) <= tol
}

/// Empirical Theorem 4.1 evidence gathered in one engine pass per schedule
/// per trial.
#[derive(Clone, Debug)]
pub struct SeqParReport {
    /// Max one-sided CDF violation of `τ_seq ⪯ τ_par` (≈0 is consistent).
    pub dominance_violation: f64,
    /// Two-sample KS p-value of the total-step counts (high = consistent
    /// with the Theorem 4.1 equidistribution).
    pub total_steps_p: f64,
}

/// Checks Theorem 4.1 on `g`: runs `trials` Sequential and Parallel
/// realizations through the shared engine, capturing dispersion time *and*
/// total steps from the same run (one pass per schedule per trial, no
/// trajectories), then compares the empirical distributions.
pub fn seq_par_report<T: dispersion_graphs::Topology + Sync + ?Sized>(
    g: &T,
    origin: dispersion_graphs::Vertex,
    cfg: &dispersion_core::process::ProcessConfig,
    trials: usize,
    threads: usize,
    seed: u64,
) -> SeqParReport {
    use crate::experiment::Process;
    let pairs = |process: Process, seed: u64| -> (Vec<f64>, Vec<f64>) {
        let both: Vec<(f64, f64)> = crate::parallel::par_trials(trials, threads, seed, |_, rng| {
            let out = process
                .run_observed(g, origin, cfg, &mut (), rng)
                .unwrap_or_else(|e| panic!("{e}"));
            (out.dispersion_time() as f64, out.total_steps as f64)
        });
        both.into_iter().unzip()
    };
    let (seq_disp, seq_total) = pairs(Process::Sequential, seed);
    let (par_disp, par_total) = pairs(Process::Parallel, seed.wrapping_add(1));
    SeqParReport {
        dominance_violation: dominance_violation(&seq_disp, &par_disp),
        total_steps_p: ks_p_value(&seq_total, &par_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::RngExt;

    #[test]
    fn identical_samples_zero_statistic() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(ks_statistic(&xs, &xs), 0.0);
        assert!(ks_p_value(&xs, &xs) > 0.99);
    }

    #[test]
    fn disjoint_samples_full_statistic() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
        assert!(ks_p_value(&a, &b) < 0.1);
    }

    #[test]
    fn same_distribution_high_p() {
        let mut rng = Xoshiro256pp::new(1);
        let a: Vec<f64> = (0..2000).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.random::<f64>()).collect();
        assert!(ks_p_value(&a, &b) > 0.01);
    }

    #[test]
    fn different_distributions_low_p() {
        let mut rng = Xoshiro256pp::new(2);
        let a: Vec<f64> = (0..2000).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.random::<f64>() + 0.2).collect();
        assert!(ks_p_value(&a, &b) < 0.001);
    }

    #[test]
    fn dominance_detected() {
        let mut rng = Xoshiro256pp::new(3);
        let a: Vec<f64> = (0..3000).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        // A ⪯ B clearly
        assert!(consistent_with_dominance(&a, &b, 0.05));
        // the reverse is violated by about the shift mass
        assert!(dominance_violation(&b, &a) > 0.3);
    }

    #[test]
    fn dominance_reflexive() {
        let xs = [5.0, 6.0, 7.0];
        assert_eq!(dominance_violation(&xs, &xs), 0.0);
    }

    #[test]
    fn seq_par_report_on_clique() {
        // Theorem 4.1 on K_24: dominance holds and total steps are
        // equidistributed, measured through the shared engine
        let g = dispersion_graphs::generators::complete(24);
        let cfg = dispersion_core::process::ProcessConfig::simple();
        let r = seq_par_report(&g, 0, &cfg, 600, 4, 11);
        assert!(
            r.dominance_violation < 0.1,
            "violation {}",
            r.dominance_violation
        );
        assert!(r.total_steps_p > 0.001, "p {}", r.total_steps_p);
    }

    #[test]
    fn kolmogorov_q_limits() {
        assert!(kolmogorov_q(0.0) >= 1.0 - 1e-9);
        assert!(kolmogorov_q(3.0) < 1e-6);
        assert!(kolmogorov_q(0.8) > kolmogorov_q(1.2));
    }
}
