//! Lower bounds on the dispersion time (Theorems 3.6, 3.7 and
//! Proposition 3.9).

use dispersion_graphs::traversal::is_tree;
use dispersion_graphs::Graph;
use dispersion_markov::mixing::{mixing_time, mixing_time_bounds, relaxation_time};
use dispersion_markov::transition::WalkKind;

/// Theorem 3.6: `t_seq(G) = Ω(|E|/Δ)`. Returns the explicit quantity
/// `|E|/Δ` (the proof gives `t_seq ≥ c·|E|/Δ` for an absolute constant; for
/// almost-regular graphs this is `Ω(n)`).
pub fn thm36_edges_over_maxdeg(g: &Graph) -> f64 {
    g.m() as f64 / g.max_degree() as f64
}

/// Theorem 3.6's sharper intermediate quantity: the best commute-time lower
/// bound `min_v t_com(w, v)/2` obtained from the degree-resistance bound
/// `t_com = 2|E|·R ≥ 2|E|·(1/deg(u)+1/deg(v))/2`.
pub fn thm36_commute_lower(g: &Graph) -> f64 {
    let m = g.m() as f64;
    // min over v != w of |E| * (lower bound on R)/1 — conservative: use 2/Δ
    m * (1.0 / g.max_degree() as f64)
}

/// Theorem 3.7: for any tree on `n` vertices, `t_seq(T) ≥ 2n − 3`.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn thm37_tree_lower(g: &Graph) -> f64 {
    assert!(is_tree(g), "Theorem 3.7 applies to trees only");
    (2 * g.n()) as f64 - 3.0
}

/// Proposition 3.9: `t_seq = Ω(t_mix) = Ω(λ₂/(1−λ₂)) = Ω(1/Φ)` for lazy
/// walks. Returns the lazy mixing time (exact for small `n`, spectral lower
/// bound otherwise).
pub fn prop39_mixing_lower(g: &Graph) -> f64 {
    if g.n() <= 256 {
        if let Some(t) = mixing_time(g, WalkKind::Lazy, 0.25, 1 << 22) {
            return t as f64;
        }
    }
    mixing_time_bounds(g, WalkKind::Lazy, 0.25).0
}

/// The relaxation-time form of Proposition 3.9: `λ₂/(1 − λ₂)` of the lazy
/// walk.
pub fn prop39_relaxation_lower(g: &Graph) -> f64 {
    (relaxation_time(g, WalkKind::Lazy) - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersion_graphs::generators::{binary_tree, complete, cycle, hypercube, path, star};

    #[test]
    fn thm36_values() {
        // regular graphs: |E|/Δ = n/2
        let g = cycle(20);
        assert!((thm36_edges_over_maxdeg(&g) - 10.0).abs() < 1e-12);
        let k = complete(10);
        assert!((thm36_edges_over_maxdeg(&k) - 5.0).abs() < 1e-12);
        // star: |E|/Δ = (n-1)/(n-1) = 1 (the bound is weak on irregular graphs)
        let s = star(8);
        assert!((thm36_edges_over_maxdeg(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thm37_values() {
        assert_eq!(thm37_tree_lower(&path(10)), 17.0);
        assert_eq!(thm37_tree_lower(&star(10)), 17.0);
        assert_eq!(thm37_tree_lower(&binary_tree(4)), 27.0);
    }

    #[test]
    #[should_panic(expected = "trees only")]
    fn thm37_rejects_non_trees() {
        let _ = thm37_tree_lower(&cycle(8));
    }

    #[test]
    fn prop39_orders() {
        // cycle mixes slowly (Θ(n²)); clique mixes in O(1)
        let slow = prop39_mixing_lower(&cycle(32));
        let fast = prop39_mixing_lower(&complete(32));
        assert!(slow > 10.0 * fast, "cycle {slow} vs clique {fast}");
    }

    #[test]
    fn relaxation_lower_consistent_with_mixing() {
        // t_mix ≥ (t_rel − 1)·ln 2 > (t_rel − 1)/2
        for g in [cycle(24), hypercube(4), star(12)] {
            let t = prop39_mixing_lower(&g);
            let r = prop39_relaxation_lower(&g);
            assert!(t >= r * 0.5 - 1.0, "tmix {t} vs trel-1 {r}");
        }
    }
}
