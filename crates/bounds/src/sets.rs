//! Hitting times of sets: the Appendix C estimates.
//!
//! Lemma C.2/C.3: for (almost-)regular graphs and any set `S`,
//! `t_hit(v, S) ≤ 5/(1−e⁻¹) · n(1 + ⌈log|S|⌉) / ((1−λ₂)|S|)`,
//! and with polynomial return-probability decay
//! `p^t_{u,w} ≤ 1/n + C t^{−(1+ε)}` the sharper
//! `t_hit(v, S) ≤ 5/(1−e⁻¹) · (C+2) n / |S|^{ε/(1+ε)}`.

use dispersion_graphs::{Graph, Vertex};
use dispersion_markov::hitting::hitting_times_to_set;
use dispersion_markov::mixing::lambda2_with;
use dispersion_markov::transition::WalkKind;
use dispersion_markov::Solver;

/// The leading constant `5/(1 − e⁻¹)` of Lemma C.2.
pub fn lemma_c2_constant() -> f64 {
    5.0 / (1.0 - (-1.0f64).exp())
}

/// Lemma C.2 first bound: spectral estimate of `max_v t_hit(v, S)` for any
/// set of size `s` on an (almost-)regular graph, using the lazy walk's `λ₂`.
///
/// # Panics
///
/// Panics if `s == 0` or `s > n`.
pub fn set_hitting_upper_estimate(g: &Graph, s: usize) -> f64 {
    set_hitting_upper_estimate_with(g, s, Solver::Auto)
}

/// [`set_hitting_upper_estimate`] with `λ₂` computed on an explicit
/// [`Solver`] backend (Lanczos instead of dense Jacobi for large graphs).
///
/// # Panics
///
/// Panics if `s == 0` or `s > n`.
pub fn set_hitting_upper_estimate_with(g: &Graph, s: usize, solver: Solver) -> f64 {
    let n = g.n();
    assert!(s >= 1 && s <= n, "set size {s} out of range");
    let l2 = lambda2_with(g, WalkKind::Lazy, solver);
    let gap = (1.0 - l2).max(1e-12);
    let log_s = if s <= 1 {
        0.0
    } else {
        (s as f64).log2().ceil()
    };
    lemma_c2_constant() * n as f64 * (1.0 + log_s) / (gap * s as f64)
}

/// Lemma C.2 second bound, given a return-probability envelope
/// `p^t ≤ 1/n + C·t^{−(1+ε)}`.
pub fn set_hitting_upper_estimate_returns(n: usize, s: usize, c: f64, eps: f64) -> f64 {
    assert!(s >= 1 && s <= n);
    assert!(eps > 0.0);
    lemma_c2_constant() * (c + 2.0) * n as f64 / (s as f64).powf(eps / (1.0 + eps))
}

/// Exact worst-start hitting time of a concrete set:
/// `max_v t_hit(v, S)` by one linear solve.
pub fn exact_worst_set_hitting(g: &Graph, kind: WalkKind, set: &[Vertex]) -> f64 {
    hitting_times_to_set(g, kind, set)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Exact `max_{S : |S| = s} max_v t_hit(v, S)` by brute force over all
/// `\binom{n}{s}` sets — only feasible for tiny graphs; used to validate the
/// spectral estimates.
///
/// # Panics
///
/// Panics if `\binom{n}{s}` exceeds 200 000 (refusing an infeasible
/// enumeration).
pub fn brute_force_worst_set_hitting(g: &Graph, kind: WalkKind, s: usize) -> f64 {
    let n = g.n();
    assert!(s >= 1 && s <= n);
    let combinations = binomial(n, s);
    assert!(
        combinations <= 200_000,
        "C({n},{s}) = {combinations} too large for brute force"
    );
    let mut best = 0.0f64;
    let mut set: Vec<Vertex> = (0..s as Vertex).collect();
    loop {
        best = best.max(exact_worst_set_hitting(g, kind, &set));
        // next combination in lexicographic order
        let mut i = s;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if set[i] < (n - s + i) as Vertex {
                set[i] += 1;
                for j in (i + 1)..s {
                    set[j] = set[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn binomial(n: usize, k: usize) -> usize {
    let k = k.min(n - k);
    let mut result = 1usize;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersion_graphs::generators::{complete, cycle, hypercube};

    #[test]
    fn constant_value() {
        assert!((lemma_c2_constant() - 7.9102).abs() < 1e-3);
    }

    #[test]
    fn spectral_estimate_dominates_exact_on_cycle() {
        let g = cycle(12);
        for s in [1usize, 2, 3, 4, 6] {
            let est = set_hitting_upper_estimate(&g, s);
            let exact = brute_force_worst_set_hitting(&g, WalkKind::Lazy, s);
            assert!(est >= exact, "s={s}: estimate {est} below exact {exact}");
        }
    }

    #[test]
    fn spectral_estimate_dominates_exact_on_clique() {
        let g = complete(10);
        for s in [1usize, 2, 5] {
            let est = set_hitting_upper_estimate(&g, s);
            let exact = brute_force_worst_set_hitting(&g, WalkKind::Lazy, s);
            assert!(est >= exact, "s={s}: {est} vs {exact}");
        }
    }

    #[test]
    fn estimate_decreases_in_set_size() {
        let g = hypercube(5);
        let one = set_hitting_upper_estimate(&g, 1);
        let half = set_hitting_upper_estimate(&g, 16);
        assert!(half < one);
    }

    #[test]
    fn returns_based_estimate_shape() {
        // with ε = 1/2, the bound scales as n / s^{1/3}
        let a = set_hitting_upper_estimate_returns(1000, 1, 1.0, 0.5);
        let b = set_hitting_upper_estimate_returns(1000, 8, 1.0, 0.5);
        assert!((a / b - 2.0).abs() < 1e-9); // 8^{1/3} = 2
    }

    #[test]
    fn exact_set_hitting_monotone() {
        let g = cycle(10);
        let single = exact_worst_set_hitting(&g, WalkKind::Simple, &[0]);
        let pair = exact_worst_set_hitting(&g, WalkKind::Simple, &[0, 5]);
        assert!(pair <= single);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 1), 10);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(12, 3), 220);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn brute_force_refuses_large_enumerations() {
        let g = cycle(40);
        let _ = brute_force_worst_set_hitting(&g, WalkKind::Simple, 20);
    }
}
