//! # dispersion-bounds
//!
//! The theoretical bound formulas of *"The Dispersion Time of Random Walks
//! on Finite Graphs"*, evaluated on concrete graphs:
//!
//! * [`upper`] — Theorem 3.1 (`6·t_hit·log₂ n`), Corollary 3.2 worst-case
//!   envelopes, Theorems 3.3/3.5 (phase sums over hitting times of large
//!   sets),
//! * [`lower`] — Theorem 3.6 (`Ω(|E|/Δ)`), Theorem 3.7 (trees: `2n−3`),
//!   Proposition 3.9 (`Ω(t_mix)`),
//! * [`sets`] — the Appendix C spectral estimates for `t_hit(π, S)` plus
//!   exact brute-force oracles to validate them,
//! * [`constants`] — `κ_cc` (Lemma 5.1), `π²/6`, the reported `κ_p`.
//!
//! ```
//! use dispersion_bounds::constants::{kappa_cc_default, PI2_OVER_6};
//! assert!(kappa_cc_default() < PI2_OVER_6); // sequential beats parallel on K_n
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appendix_c;
pub mod constants;
pub mod lower;
pub mod sets;
pub mod upper;

pub use constants::{kappa_cc, kappa_cc_default, KAPPA_P_REPORTED, PI2_OVER_6};
pub use lower::{prop39_mixing_lower, thm36_edges_over_maxdeg, thm37_tree_lower};
pub use upper::{thm31_whp_threshold, thm33_spectral, thm35_spectral};
