//! The explicit constants of Section 5.
//!
//! * `κ_cc` (Lemma 5.1): `lim E[T_n]/n` for the maximum of `n` independent
//!   geometrics with parameters `i/n` — the Sequential-IDLA constant on the
//!   clique (`t_seq(K_n) ∼ κ_cc·n ≈ 1.255 n`).
//! * `π²/6 ≈ 1.645`: the Parallel-IDLA clique constant (Theorem 5.2).
//! * `κ_p ≈ 0.6`: the (non-explicit) path constant; the paper reports it
//!   from simulations, which `bin/kp_path` re-runs.

/// `π²/6`, the Parallel-IDLA constant on the clique (Theorem 5.2):
/// `t_par(K_n) ∼ (π²/6) · n`.
pub const PI2_OVER_6: f64 = std::f64::consts::PI * std::f64::consts::PI / 6.0;

/// Computes the coupon-collector constant of Lemma 5.1,
/// `κ_cc = Σ_{i≥1} (−1)^{i+1} ( 2/(i(3i−1)) + 2/(i(3i+1)) ) ≈ 1.2552`,
/// truncating when terms drop below `tol`.
///
/// Note: the paper prints the series without the alternating sign and with
/// a minus inside; that expression evaluates to ≈ 0.5917, not the quoted
/// 1.255. The alternating form (from the pentagonal-number expansion in
/// Brennan–Kariv–Knopfmacher) both matches the quoted value and matches a
/// direct evaluation of `E[max_i Geom(i/n)]/n` (see the tests), so we
/// implement that.
pub fn kappa_cc(tol: f64) -> f64 {
    let mut sum = 0.0;
    let mut i = 1.0f64;
    let mut sign = 1.0;
    loop {
        let term = 2.0 / (i * (3.0 * i - 1.0)) + 2.0 / (i * (3.0 * i + 1.0));
        sum += sign * term;
        if term < tol {
            break;
        }
        sign = -sign;
        i += 1.0;
    }
    sum
}

/// The reference value `κ_cc ≈ 1.2550` evaluated to high precision.
pub fn kappa_cc_default() -> f64 {
    kappa_cc(1e-14)
}

/// The simulation-derived path constant reported by the paper
/// (`t_seq(P_n), t_par(P_n) ≈ κ_p · n² log n`, κ_p ≈ 0.6 per the paper's
/// acknowledged simulations). This is *not* an exact constant; our
/// `bin/kp_path` experiment re-estimates it.
pub const KAPPA_P_REPORTED: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi2_over_6_value() {
        assert!((PI2_OVER_6 - 1.6449340668).abs() < 1e-9);
    }

    #[test]
    fn kappa_cc_matches_paper() {
        // the paper quotes ≈ 1.255
        let k = kappa_cc_default();
        assert!((k - 1.255).abs() < 2e-3, "κ_cc = {k}");
    }

    #[test]
    fn kappa_cc_converges() {
        // alternating series: successive truncations bracket the limit
        assert!((kappa_cc(1e-12) - kappa_cc(1e-6)).abs() < 1e-5);
    }

    #[test]
    fn clique_constants_distinct() {
        // Remark 5.3: κ_cc ≈ 1.255 vs π²/6 ≈ 1.645 — the sequential and
        // parallel clique processes differ by ≈ 30%.
        let gap = PI2_OVER_6 / kappa_cc_default();
        assert!((1.25..1.4).contains(&gap), "π²/6 / κ_cc = {gap}");
    }

    #[test]
    fn kappa_cc_against_direct_simulation_formula() {
        // κ_cc is also E[max_i Geom(i/n)]/n in the n→∞ limit; check the
        // series against a large-n exact computation of
        // E[max] = Σ_{t≥0} (1 - Π_i (1-(1-i/n)^t)) … use the identity
        // E[T]/n → Σ ... simpler: numeric evaluation for n = 4000 by the
        // survival formula E[T] = Σ_{t≥0} Pr[T > t].
        let n = 4000usize;
        let mut e = 0.0f64;
        let mut t = 0u32;
        loop {
            // Pr[T > t] = 1 - Π_{i=1}^{n} (1 - (1 - i/n)^t)
            let mut prod = 1.0f64;
            for i in 1..=n {
                let q = 1.0 - i as f64 / n as f64;
                prod *= 1.0 - q.powi(t as i32);
                if prod == 0.0 {
                    break;
                }
            }
            let tail = 1.0 - prod;
            e += tail;
            if tail < 1e-9 {
                break;
            }
            t += 1;
        }
        let ratio = e / n as f64;
        assert!(
            (ratio - kappa_cc_default()).abs() < 0.01,
            "E[T]/n = {ratio} vs κ_cc = {}",
            kappa_cc_default()
        );
    }
}
