//! Upper bounds on the dispersion time (Theorems 3.1, 3.3, 3.5 and
//! Corollary 3.2).

use crate::sets::set_hitting_upper_estimate;
use dispersion_graphs::Graph;
use dispersion_markov::hitting::max_hitting_time;
use dispersion_markov::mixing::{mixing_time, mixing_time_bounds};
use dispersion_markov::transition::WalkKind;

/// Theorem 3.1 (w.h.p. form): `Pr[τ > 6·t_hit·log₂ n] ≤ n⁻²`.
/// Returns the threshold `6·t_hit(G)·log₂ n`.
pub fn thm31_whp_threshold(g: &Graph, kind: WalkKind) -> f64 {
    let n = g.n() as f64;
    6.0 * max_hitting_time(g, kind) * n.log2()
}

/// Theorem 3.1 (expectation form): `t_par = O(t_hit log n)`; the proof's
/// explicit constant gives `E[τ] ≤ 6·t_hit·log₂(n) / (1 − n⁻²) + O(1)` ≈ the
/// same threshold, which we return.
pub fn thm31_expectation_bound(g: &Graph, kind: WalkKind) -> f64 {
    let n = g.n() as f64;
    thm31_whp_threshold(g, kind) / (1.0 - 1.0 / (n * n).max(2.0))
}

/// Corollary 3.2, general graphs: `t_seq, t_par = O(n³ log n)`. Returns the
/// explicit envelope `c·n³·log₂ n` with the constant from combining
/// Theorem 3.1 with `t_hit ≤ (4/27 + o(1))·n³` (Lovász Thm 2.1 / Brightwell–
/// Winkler); we use the clean envelope `n³ log₂ n`.
pub fn cor32_general(n: usize) -> f64 {
    let n = n as f64;
    n.powi(3) * n.log2()
}

/// Corollary 3.2, regular graphs: `t_seq, t_par = O(n² log n)`; envelope
/// `2·n²·log₂ n` (regular graphs have `t_hit ≤ 2n²`).
pub fn cor32_regular(n: usize) -> f64 {
    let n = n as f64;
    2.0 * n * n * n.log2()
}

/// Theorem 3.3: for the lazy Parallel-IDLA,
/// `t_par ≤ 60 · Σ_{j=1}^{⌈log₂ n⌉} ( t_mix + max_{|S| ≥ 2^{j−2}} t_hit(π,S) )`.
///
/// `set_hit(s)` must upper-bound `max_{|S| ≥ s} t_hit(π, S)`; plug in
/// [`set_hitting_upper_estimate`] (Lemma C.2/C.3) or an exact oracle on tiny
/// graphs.
pub fn thm33_sum<F: Fn(usize) -> f64>(n: usize, tmix: f64, set_hit: F) -> f64 {
    let jmax = (n as f64).log2().ceil() as usize;
    let mut total = 0.0;
    for j in 1..=jmax.max(1) {
        let s = (1usize << j.saturating_sub(2)).max(1); // 2^{j-2}, at least 1
        total += tmix + set_hit(s);
    }
    60.0 * total
}

/// Theorem 3.5: for the lazy Sequential-IDLA,
/// `t_seq ≤ 30 · max_j { j · ( t_mix + max_{|S| ≥ 2^{j−2}} t_hit(π,S) ) }`.
pub fn thm35_max<F: Fn(usize) -> f64>(n: usize, tmix: f64, set_hit: F) -> f64 {
    let jmax = (n as f64).log2().ceil() as usize;
    let mut best = 0.0f64;
    for j in 1..=jmax.max(1) {
        let s = (1usize << j.saturating_sub(2)).max(1);
        best = best.max(j as f64 * (tmix + set_hit(s)));
    }
    30.0 * best
}

/// Convenience: evaluates Theorem 3.3 for an almost-regular graph using the
/// Lemma C.3 spectral estimate for the set-hitting terms and the exact lazy
/// mixing time when `n` is small (spectral upper bound otherwise).
pub fn thm33_spectral(g: &Graph) -> f64 {
    let n = g.n();
    let tmix = lazy_mixing_estimate(g);
    thm33_sum(n, tmix, |s| set_hitting_upper_estimate(g, s))
}

/// Convenience: evaluates Theorem 3.5 the same way.
pub fn thm35_spectral(g: &Graph) -> f64 {
    let n = g.n();
    let tmix = lazy_mixing_estimate(g);
    thm35_max(n, tmix, |s| set_hitting_upper_estimate(g, s))
}

/// The lazy mixing time: exact TV computation for `n ≤ 256`, spectral upper
/// bound beyond.
pub fn lazy_mixing_estimate(g: &Graph) -> f64 {
    if g.n() <= 256 {
        if let Some(t) = mixing_time(g, WalkKind::Lazy, 0.25, 1 << 22) {
            return t as f64;
        }
    }
    mixing_time_bounds(g, WalkKind::Lazy, 0.25).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersion_graphs::generators::{complete, cycle, hypercube, path, star};

    #[test]
    fn thm31_threshold_on_cycle() {
        // cycle: t_hit = n²/4 at the antipode (max over pairs d(n-d) = n²/4)
        let n = 16usize;
        let t = thm31_whp_threshold(&cycle(n), WalkKind::Simple);
        let expect = 6.0 * (n * n / 4) as f64 * (n as f64).log2();
        assert!((t - expect).abs() < 1e-6);
    }

    #[test]
    fn cor32_envelopes_dominate_thm31() {
        // On the (regular) cycle and the (general) lollipop-ish path, the
        // Corollary 3.2 envelopes dominate the per-graph Theorem 3.1 values.
        for n in [16usize, 32, 64] {
            let c = cycle(n);
            assert!(cor32_regular(n) >= thm31_whp_threshold(&c, WalkKind::Simple) / 6.0);
            let p = path(n);
            assert!(cor32_general(n) >= thm31_whp_threshold(&p, WalkKind::Simple) / 6.0);
        }
    }

    #[test]
    fn thm33_recovers_thit_log_order() {
        // Remark 3.4: the Theorem 3.3 bound is at most 120⌈log n⌉·(t_mix+t_hit).
        let g = complete(32);
        let n = g.n();
        let tmix = 1.0;
        let thit = 31.0;
        let bound = thm33_sum(n, tmix, |_| thit);
        let remark = 120.0 * (n as f64).log2().ceil() * (tmix + thit);
        assert!(bound <= remark + 1e-9, "{bound} vs {remark}");
    }

    #[test]
    fn thm35_at_most_thm33_up_to_constants() {
        // The paper notes the Thm 3.5 bound is at most the Thm 3.3 bound
        // (up to constants): max_j j·a_j ≤ Σ_j j·a_j ≤ log n Σ a_j; check
        // the direct comparison 30·max ≤ 60·Σ for decreasing set-hit terms.
        let n = 64;
        let tmix = 3.0;
        let set_hit = |s: usize| 100.0 / s as f64 * (1.0 + (s as f64).ln());
        let t35 = thm35_max(n, tmix, set_hit);
        let t33 = thm33_sum(n, tmix, set_hit);
        // For these decreasing terms the j·a_j max is attained early and
        // the sum dominates... verify numerically.
        assert!(t35 <= 2.0 * t33, "t35 = {t35}, t33 = {t33}");
    }

    #[test]
    fn spectral_bounds_dominate_known_dispersion_orders() {
        // On expander-like graphs (clique, hypercube) the Theorem 3.3
        // spectral evaluation must be >= the true dispersion time order
        // (≈ 1.6 n on the clique).
        let g = complete(64);
        let bound = thm33_spectral(&g);
        assert!(bound >= 1.6 * 64.0, "bound {bound}");
        let h = hypercube(6);
        let bound = thm33_spectral(&h);
        assert!(bound >= 64.0, "bound {bound}");
    }

    #[test]
    fn star_bounds_finite() {
        let g = star(32);
        assert!(thm33_spectral(&g).is_finite());
        assert!(thm35_spectral(&g).is_finite());
        assert!(thm35_spectral(&g) > 0.0);
    }
}
