//! Theorem C.4: the multi-walk phase bound
//! `t_par ≤ Σ_{j=1}^{k} ( t_mix(1/n⁴) + t^j_hit(π, S_j) )`
//! where phase `j` has `j` unsettled walks and `j` unoccupied sites.

use dispersion_graphs::Graph;
use dispersion_markov::mixing::{mixing_time, mixing_time_bounds_with};
use dispersion_markov::multiwalk::multiwalk_hitting_upper_estimate;
use dispersion_markov::transition::WalkKind;
use dispersion_markov::Solver;

/// Evaluates the Theorem C.4 sum with the independence estimate for each
/// `t^j_hit` term: `set_hit(j)` must upper-bound `t_hit(π, S)` for the
/// worst set of size `j`.
pub fn thm_c4_sum<F: Fn(usize) -> f64>(k: usize, tmix_fine: f64, set_hit: F) -> f64 {
    (1..=k)
        .map(|j| tmix_fine + multiwalk_hitting_upper_estimate(tmix_fine, set_hit(j), j))
        .sum()
}

/// Convenience evaluation on a graph: uses the exact lazy `t_mix(1/4)`
/// scaled to the `1/n⁴` accuracy by the standard sub-multiplicativity
/// `t_mix(2^{-ℓ}) ≤ ℓ·t_mix(1/4)`, and the Lemma C.2 spectral estimate for
/// the set-hitting terms.
pub fn thm_c4_spectral(g: &Graph) -> f64 {
    thm_c4_spectral_with(g, Solver::Auto)
}

/// [`thm_c4_spectral`] with the spectral ingredients (relaxation time and
/// the Lemma C.2 `λ₂` estimates) computed on an explicit [`Solver`]
/// backend, so the bound stays evaluable on graphs far beyond the dense
/// eigensolver's reach.
pub fn thm_c4_spectral_with(g: &Graph, solver: Solver) -> f64 {
    let n = g.n();
    let tmix_quarter = if n <= 256 {
        mixing_time(g, WalkKind::Lazy, 0.25, 1 << 22)
            .map(|t| t as f64)
            .unwrap_or_else(|| mixing_time_bounds_with(g, WalkKind::Lazy, 0.25, solver).1)
    } else {
        mixing_time_bounds_with(g, WalkKind::Lazy, 0.25, solver).1
    };
    // 1/n⁴ = 2^{-4 log2 n}
    let levels = (4.0 * (n as f64).log2()).ceil().max(1.0);
    let tmix_fine = levels * tmix_quarter;
    thm_c4_sum(n, tmix_fine, |j| {
        crate::sets::set_hitting_upper_estimate_with(g, j, solver)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersion_graphs::generators::{complete, hypercube};

    #[test]
    fn sum_is_monotone_in_k() {
        let set_hit = |j: usize| 100.0 / j as f64;
        let a = thm_c4_sum(4, 2.0, set_hit);
        let b = thm_c4_sum(8, 2.0, set_hit);
        assert!(b > a);
    }

    #[test]
    fn spectral_evaluation_finite_and_dominates_linear_time() {
        for g in [complete(32), hypercube(5)] {
            let bound = thm_c4_spectral(&g);
            assert!(bound.is_finite());
            // any valid upper bound must exceed the true Θ(n) dispersion
            assert!(bound >= g.n() as f64, "bound {bound} below n");
        }
    }

    #[test]
    fn terms_shrink_with_more_walks() {
        // the j-walk estimate decreases in j for fixed set size... here the
        // set also shrinks with j; check the summand for j=1 exceeds the
        // average summand, i.e. early phases dominate.
        let g = complete(64);
        let tmix = 2.0;
        let first = tmix
            + multiwalk_hitting_upper_estimate(
                tmix,
                crate::sets::set_hitting_upper_estimate(&g, 1),
                1,
            );
        let total = thm_c4_sum(64, tmix, |j| crate::sets::set_hitting_upper_estimate(&g, j));
        assert!(
            first > total / 64.0,
            "first {first} vs avg {}",
            total / 64.0
        );
    }
}
