//! The dispersion process as a generalized coupon collector.
//!
//! On the complete graph, Sequential-IDLA *is* the coupon-collector process
//! (Section 1 of the paper): each walk step draws a uniform "coupon"
//! (vertex) and a particle settles when it draws an uncollected one. The
//! dispersion time is the longest waiting time between consecutive coupons.
//!
//! This example checks the correspondence numerically and then shows how
//! the topology changes the answer: the same "collect everything" task on a
//! cycle costs Θ(n² log n) instead of Θ(n).
//!
//! ```text
//! cargo run --release --example coupon_collector
//! ```

use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::generators::{complete, cycle};
use dispersion_sim::parallel::par_samples;
use dispersion_sim::stats::Summary;
use dispersion_sim::Xoshiro256pp;
use rand::RngExt;

/// Longest waiting time of a literal coupon-collector run with `n` coupons
/// and one pre-collected coupon (the settled origin).
fn coupon_collector_longest_wait(n: usize, rng: &mut Xoshiro256pp) -> u64 {
    let mut collected = vec![false; n];
    collected[0] = true;
    let mut remaining = n - 1;
    let mut longest = 0u64;
    let mut current = 0u64;
    while remaining > 0 {
        current += 1;
        let c = rng.random_range(0..n);
        if !collected[c] {
            collected[c] = true;
            remaining -= 1;
            longest = longest.max(current);
            current = 0;
        }
    }
    longest
}

fn main() {
    let n = 512;
    let trials = 300;
    let cfg = ProcessConfig::simple();

    // --- clique dispersion vs literal coupon collector ---
    let g = complete(n);
    let disp = par_samples(trials, 0, 11, |_, rng| {
        run_sequential(&g, 0, &cfg, rng).unwrap().dispersion_time as f64
    });
    let cc = par_samples(trials, 0, 12, |_, rng| {
        coupon_collector_longest_wait(n, rng) as f64
    });
    let d = Summary::from_samples(&disp);
    let c = Summary::from_samples(&cc);
    println!("n = {n}, {trials} trials");
    println!(
        "clique dispersion time  : mean {:8.1} ± {:.1}",
        d.mean,
        1.96 * d.sem
    );
    println!(
        "coupon longest wait     : mean {:8.1} ± {:.1}",
        c.mean,
        1.96 * c.sem
    );
    println!(
        "ratio                   : {:.3}  (should be ≈ 1 up to the clique's",
        d.mean / c.mean
    );
    println!("                          n/(n-1) no-self-jump correction)\n");

    // --- topology matters: the cycle collector ---
    let small = 64; // cycles are Θ(n² log n); keep it tame
    let gc = cycle(small);
    let cyc = par_samples(trials, 0, 13, |_, rng| {
        run_sequential(&gc, 0, &cfg, rng).unwrap().dispersion_time as f64
    });
    let gk = complete(small);
    let clq = par_samples(trials, 0, 14, |_, rng| {
        run_sequential(&gk, 0, &cfg, rng).unwrap().dispersion_time as f64
    });
    let sc = Summary::from_samples(&cyc);
    let sk = Summary::from_samples(&clq);
    println!("same task, n = {small}:");
    println!("  on the clique : {:8.1} steps  (Θ(n))", sk.mean);
    println!("  on the cycle  : {:8.1} steps  (Θ(n² log n))", sc.mean);
    println!("  slowdown      : {:.1}×", sc.mean / sk.mean);
}
