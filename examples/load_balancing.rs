//! Dispersion as local-search load balancing.
//!
//! The paper motivates dispersion processes as "simple local protocols for
//! resource allocation": `n` jobs start at one hot node of a cluster and
//! each migrates along network links until it finds a free machine (cf. the
//! QoS load-balancing model and local-search reallocation schemes cited in
//! Section 1).
//!
//! This example compares the sequential protocol (a coordinator releases
//! jobs one at a time) with the parallel protocol (all jobs migrate
//! concurrently) on a random 5-regular "cluster network", and reports both
//! the makespan proxy (dispersion time) and the total network traffic
//! (total steps) — which Theorem 4.1 proves has the *same distribution*
//! under both schedulers.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use dispersion_core::process::parallel::run_parallel;
use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::generators::random_regular_connected;
use dispersion_sim::dominance::ks_p_value;
use dispersion_sim::parallel::par_samples;
use dispersion_sim::stats::Summary;
use dispersion_sim::Xoshiro256pp;

fn main() {
    let machines = 1024;
    let degree = 5;
    let trials = 200;
    let cfg = ProcessConfig::simple();

    let mut grng = Xoshiro256pp::new(0xC1);
    let cluster = random_regular_connected(machines, degree, &mut grng);
    println!(
        "cluster: random {degree}-regular network on {machines} machines, all jobs start at node 0\n"
    );

    let seq_disp = par_samples(trials, 0, 21, |_, rng| {
        run_sequential(&cluster, 0, &cfg, rng)
            .unwrap()
            .dispersion_time as f64
    });
    let par_disp = par_samples(trials, 0, 22, |_, rng| {
        run_parallel(&cluster, 0, &cfg, rng)
            .unwrap()
            .dispersion_time as f64
    });
    let seq_traffic = par_samples(trials, 0, 23, |_, rng| {
        run_sequential(&cluster, 0, &cfg, rng).unwrap().total_steps as f64
    });
    let par_traffic = par_samples(trials, 0, 24, |_, rng| {
        run_parallel(&cluster, 0, &cfg, rng).unwrap().total_steps as f64
    });

    let sd = Summary::from_samples(&seq_disp);
    let pd = Summary::from_samples(&par_disp);
    let st = Summary::from_samples(&seq_traffic);
    let pt = Summary::from_samples(&par_traffic);

    println!("worst job migration count (dispersion time):");
    println!("  sequential release : {:8.1} hops", sd.mean);
    println!(
        "  parallel release   : {:8.1} hops ({:.2}× worse)",
        pd.mean,
        pd.mean / sd.mean
    );
    println!("  (expanders: Θ(n/n)=Θ(1) per-job average, worst job Θ(log-ish); Table 1 row 'expanders': t = Θ(n) total scale)\n");

    println!("total network traffic (all jobs):");
    println!("  sequential release : {:8.1} hops", st.mean);
    println!("  parallel release   : {:8.1} hops", pt.mean);
    let p = ks_p_value(&seq_traffic, &par_traffic);
    println!("  KS p-value         : {p:.3}  (Theorem 4.1: identical distributions)");
    println!("\ntakeaway: parallel release finishes the *last* job later, but the");
    println!("total work is exactly the same — scheduling redistributes, never adds.");
}
