//! IDLA aggregate growth on the 2-d torus, rendered as ASCII art.
//!
//! The classical shape theorems (Lawler–Bramson–Griffeath and successors,
//! Section 1.3 of the paper) say the IDLA aggregate on Z² converges to a
//! Euclidean ball. On a finite torus the same ball grows until it wraps —
//! which is exactly why the 2-d grid row of Table 1 is the paper's open
//! problem: the dispersion time depends on fine properties of this shape.
//!
//! We freeze the Sequential-IDLA aggregate at several fill fractions and
//! draw it, then report the per-particle walk lengths of the last settlers.
//!
//! ```text
//! cargo run --release --example aggregate_shape
//! ```

use dispersion_core::occupancy::Occupancy;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::generators::grid::{coords_of, index_of, torus2d};
use dispersion_graphs::walk::step;
use dispersion_sim::Xoshiro256pp;

fn draw(occ: &Occupancy, side: usize, origin_xy: (usize, usize)) {
    for y in 0..side {
        let mut line = String::with_capacity(side);
        for x in 0..side {
            let v = index_of(&[x, y], &[side, side]);
            let ch = if (x, y) == origin_xy {
                'O'
            } else if occ.is_occupied(v) {
                '#'
            } else {
                '.'
            };
            line.push(ch);
        }
        println!("  {line}");
    }
}

fn main() {
    let side = 41;
    let g = torus2d(side);
    let n = g.n();
    let origin = index_of(&[side / 2, side / 2], &[side, side]);
    let origin_xy = {
        let c = coords_of(origin as usize, &[side, side]);
        (c[0], c[1])
    };
    let cfg = ProcessConfig::simple();
    let mut rng = Xoshiro256pp::new(0xA66);

    // run Sequential-IDLA by hand so we can snapshot the aggregate
    let mut occ = Occupancy::new(n);
    occ.settle(origin);
    let mut walk_lengths = vec![0u64; n];
    let checkpoints = [n / 8, n / 2, (9 * n) / 10];
    let mut next_checkpoint = 0usize;

    for wl in walk_lengths.iter_mut().skip(1) {
        let mut pos = origin;
        let mut steps = 0u64;
        loop {
            pos = step(&g, cfg.walk, pos, &mut rng);
            steps += 1;
            if !occ.is_occupied(pos) {
                occ.settle(pos);
                break;
            }
        }
        *wl = steps;
        if next_checkpoint < checkpoints.len()
            && occ.settled_count() >= checkpoints[next_checkpoint]
        {
            println!(
                "\naggregate after {} of {} particles ({}%):",
                occ.settled_count(),
                n,
                100 * occ.settled_count() / n
            );
            draw(&occ, side, origin_xy);
            next_checkpoint += 1;
        }
    }

    let dispersion = walk_lengths.iter().copied().max().unwrap();
    let mut sorted = walk_lengths.clone();
    sorted.sort_unstable();
    println!("\nper-particle walk lengths on the {side}×{side} torus (n = {n}):");
    println!("  median             : {:8}", sorted[n / 2]);
    println!("  90th percentile    : {:8}", sorted[(9 * n) / 10]);
    println!("  maximum (dispersion): {:7}", dispersion);
    let nf = n as f64;
    println!(
        "  dispersion / (n ln n) = {:.2}   (Table 1: between Ω(n log n) and O(n log² n))",
        dispersion as f64 / (nf * nf.ln())
    );
}
