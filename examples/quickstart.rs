//! Quickstart: run every dispersion-process variant on a small graph and
//! print what the paper's Table 1 predicts for it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dispersion_bounds::constants::{kappa_cc_default, PI2_OVER_6};
use dispersion_core::process::continuous::run_ctu;
use dispersion_core::process::parallel::run_parallel;
use dispersion_core::process::sequential::run_sequential;
use dispersion_core::process::uniform::run_uniform;
use dispersion_core::process::ProcessConfig;
use dispersion_graphs::generators::complete;
use dispersion_sim::experiment::{estimate_dispersion, Process};
use dispersion_sim::Xoshiro256pp;

fn main() {
    let n = 256;
    let g = complete(n);
    let origin = 0;
    let cfg = ProcessConfig::simple();
    let mut rng = Xoshiro256pp::new(2024);

    println!("Dispersion processes on K_{n} from vertex {origin}\n");

    // --- one realization of each process ---
    let seq = run_sequential(&g, origin, &cfg, &mut rng).unwrap();
    println!(
        "Sequential-IDLA : dispersion {:5} steps, total {:6} steps",
        seq.dispersion_time, seq.total_steps
    );
    let par = run_parallel(&g, origin, &cfg, &mut rng).unwrap();
    println!(
        "Parallel-IDLA   : dispersion {:5} rounds, total {:6} steps",
        par.dispersion_time, par.total_steps
    );
    let unif = run_uniform(&g, origin, &cfg, &mut rng).unwrap();
    println!(
        "Uniform-IDLA    : settled after {:5} ticks ({} jumps)",
        unif.settle_tick, unif.outcome.total_steps
    );
    let ctu = run_ctu(&g, origin, &cfg, &mut rng).unwrap();
    println!(
        "CTU-IDLA        : settled at real time {:8.1}",
        ctu.settle_time
    );

    // --- Monte-Carlo estimates against the paper's Theorem 5.2 ---
    println!("\nMonte-Carlo means over 200 trials (Theorem 5.2 predictions):");
    let s = estimate_dispersion(&g, origin, Process::Sequential, &cfg, 200, 0, 7);
    println!(
        "  t_seq/n = {:.3}   (paper: κ_cc  = {:.3})",
        s.mean / n as f64,
        kappa_cc_default()
    );
    let p = estimate_dispersion(&g, origin, Process::Parallel, &cfg, 200, 0, 8);
    println!(
        "  t_par/n = {:.3}   (paper: π²/6 = {:.3})",
        p.mean / n as f64,
        PI2_OVER_6
    );
    println!("\nThe parallel scheduler is ≈31% slower on the clique — scheduling matters!");
}
